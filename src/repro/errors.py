"""Exception hierarchy for the semantic concurrency control library.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single handler while still
being able to distinguish the interesting cases (deadlock-induced aborts,
protocol violations, schema errors).

Each public class also carries a stable machine-readable :attr:`code` and
serialises to a JSON-safe payload via :meth:`to_payload`, so that kernel
errors cross process boundaries (the transaction server's wire protocol,
saved reports) without losing their type: :func:`error_from_payload`
reconstructs the original class, message, and structured fields.  Codes
are part of the wire contract — never reuse or renumber them.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by this library."""

    #: Stable machine-readable identifier for this error class.  Part of
    #: the wire protocol: clients dispatch on ``payload["code"]``.
    code = "error"

    def to_payload(self) -> dict[str, Any]:
        """Serialise to a JSON-safe dict (``code``, ``message``, fields)."""
        payload: dict[str, Any] = {"code": self.code, "message": str(self)}
        payload.update(self._payload_extra())
        return payload

    def _payload_extra(self) -> dict[str, Any]:
        """Structured fields beyond code/message; subclasses override."""
        return {}

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "ReproError":
        return cls(payload.get("message", ""))


class SchemaError(ReproError):
    """An object, type, or method definition is inconsistent.

    Raised for duplicate method names, unknown operations referenced by a
    compatibility matrix, attempts to give an object two composition
    parents (non-disjoint complex objects are out of scope), and similar
    definition-time mistakes.
    """

    code = "schema-error"


class UnknownObjectError(ReproError):
    """An OID does not resolve to a live object in the database."""

    code = "unknown-object"


class DuplicateRecordError(UnknownObjectError):
    """An object that already has a storage record was allocated again.

    Historically this was (mis-)reported as :class:`UnknownObjectError`;
    the subclass keeps ``except UnknownObjectError`` handlers working
    while letting callers distinguish "no such record" from "record
    exists twice".
    """

    code = "duplicate-record"


class UnknownOperationError(ReproError):
    """An operation name is not defined for the target object's type."""

    code = "unknown-operation"


class TransactionError(ReproError):
    """Base class for errors tied to a specific transaction execution."""

    code = "transaction-error"


class TransactionAborted(TransactionError):
    """The transaction was aborted and must not continue.

    The kernel raises this inside a transaction's coroutine when the
    transaction is chosen as a deadlock victim or when the application
    requests a rollback.  User code should generally let it propagate;
    the kernel catches it at the transaction root and runs compensation.
    """

    code = "transaction-aborted"

    def __init__(self, txn_name: str, reason: str) -> None:
        super().__init__(f"transaction {txn_name!r} aborted: {reason}")
        self.txn_name = txn_name
        self.reason = reason

    def _payload_extra(self) -> dict[str, Any]:
        return {"txn": self.txn_name, "reason": self.reason}

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "TransactionAborted":
        return cls(payload.get("txn", "?"), payload.get("reason", ""))


class DeadlockError(TransactionAborted):
    """The transaction was selected as the victim of a deadlock cycle."""

    code = "deadlock"

    def __init__(self, txn_name: str, cycle: tuple[str, ...]) -> None:
        cycle_text = " -> ".join(cycle)
        super().__init__(txn_name, f"deadlock cycle {cycle_text}")
        self.cycle = cycle

    def _payload_extra(self) -> dict[str, Any]:
        return {"txn": self.txn_name, "cycle": list(self.cycle)}

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "DeadlockError":
        return cls(payload.get("txn", "?"), tuple(payload.get("cycle", ())))


class LockTimeout(TransactionAborted):
    """A lock wait exceeded the timeout budget and the waiter was sacrificed.

    Raised under the ``"timeout"`` deadlock policy (and by injected
    lock-wait timeout faults) when the waiter's blocked request cannot be
    resolved by restarting a subtransaction.  Semantically a timeout is
    handled exactly like a deadlock victim abort — compensation runs,
    the client may resubmit — but the distinct type keeps the two causes
    apart in handles, traces, and metrics.
    """

    code = "lock-timeout"

    def __init__(self, txn_name: str, target: str, waited: float) -> None:
        super().__init__(
            txn_name, f"lock wait on {target} timed out after {waited:g} virtual time"
        )
        self.target = target
        self.waited = waited

    def _payload_extra(self) -> dict[str, Any]:
        return {"txn": self.txn_name, "target": self.target, "waited": self.waited}

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "LockTimeout":
        return cls(
            payload.get("txn", "?"),
            payload.get("target", "?"),
            float(payload.get("waited", 0.0)),
        )


class RetryExhausted(TransactionAborted):
    """A subtransaction's bounded retry budget ran out.

    The :class:`~repro.txn.retry.RetryPolicy` escalates to a top-level
    abort once a single action has been restarted ``max_restarts`` times;
    the node id of the exhausted action is recorded for diagnosis.
    """

    code = "retry-exhausted"

    def __init__(self, txn_name: str, node_id: str, attempts: int) -> None:
        super().__init__(
            txn_name,
            f"subtransaction {node_id} exhausted its retry budget "
            f"({attempts} restarts)",
        )
        self.node_id = node_id
        self.attempts = attempts

    def _payload_extra(self) -> dict[str, Any]:
        return {"txn": self.txn_name, "node_id": self.node_id, "attempts": self.attempts}

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "RetryExhausted":
        return cls(
            payload.get("txn", "?"),
            payload.get("node_id", "?"),
            int(payload.get("attempts", 0)),
        )


class DeadlineExceeded(TransactionAborted):
    """A request's deadline expired while its transaction was running.

    The transaction server arms a wall-clock timer per admitted request;
    on expiry the victim is aborted through the normal interrupt path
    (compensation runs, locks are released) and the client receives this
    error.  Kept distinct from :class:`LockTimeout` — a deadline can
    expire while the transaction is doing useful work, not just while it
    waits for a lock.
    """

    code = "deadline-exceeded"

    def __init__(self, txn_name: str, budget: float) -> None:
        super().__init__(txn_name, f"deadline of {budget:g}s exceeded")
        self.budget = budget

    def _payload_extra(self) -> dict[str, Any]:
        return {"txn": self.txn_name, "budget": self.budget}

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "DeadlineExceeded":
        return cls(payload.get("txn", "?"), float(payload.get("budget", 0.0)))


class RequestShed(ReproError):
    """The server refused a request at admission (backpressure).

    Carries a machine-readable ``reason_code`` (``queue-full``,
    ``deadline-unmeetable``, ``degraded-writes``, ``draining``,
    ``expired-in-queue``) and a ``retry_after`` hint in wall-clock
    seconds derived from the current queue-wait estimate.  Shedding is
    the server working as designed, not a fault — clients should back
    off and resubmit.
    """

    code = "request-shed"

    def __init__(self, reason_code: str, retry_after: float, detail: str = "") -> None:
        message = f"request shed ({reason_code}); retry after {retry_after:g}s"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.reason_code = reason_code
        self.retry_after = retry_after
        self.detail = detail

    def _payload_extra(self) -> dict[str, Any]:
        return {
            "reason_code": self.reason_code,
            "retry_after": self.retry_after,
            "detail": self.detail,
        }

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "RequestShed":
        return cls(
            payload.get("reason_code", "?"),
            float(payload.get("retry_after", 0.0)),
            payload.get("detail", ""),
        )


class SubtransactionRestart(BaseException):
    """Internal control-flow signal: roll back and retry one subtransaction.

    Raised into a transaction's coroutine when a deadlock cycle can be
    broken by restarting the victim's innermost active subtransaction
    instead of aborting the whole transaction (the standard multilevel
    transaction technique; cf. the paper's references [HW91, Wei91]).
    Derives from :class:`BaseException` so that application-level
    ``except Exception`` handlers in method bodies cannot swallow it;
    the kernel catches it at the owning subtransaction's frame.
    """

    def __init__(self, node) -> None:
        super().__init__(f"restart subtransaction {getattr(node, 'node_id', node)!r}")
        self.node = node
        # True once the victim machinery has charged this restart to the
        # transaction's restart budget; injected restarts are charged by
        # the kernel's retry loop instead.
        self.counted = False


class ProtocolViolation(ReproError):
    """Internal invariant of a concurrency control protocol was broken.

    Seeing this exception indicates a bug in a protocol implementation,
    not a recoverable runtime condition.
    """

    code = "protocol-violation"


class CompensationError(TransactionError):
    """A committed subtransaction could not be compensated during abort."""

    code = "compensation-error"


class RuntimeEngineError(ReproError):
    """The execution runtime reached an inconsistent state.

    For example: all tasks are blocked but no deadlock cycle exists, or a
    coroutine awaited a foreign awaitable the scheduler cannot service.
    """

    code = "runtime-engine-error"


class AggregateWorkerError(RuntimeEngineError):
    """Several worker threads failed (or wedged) in one threaded run.

    The threaded runtimes collect every worker's error; when more than
    one survives the drain — or when workers fail to join at all — the
    run raises this aggregate instead of silently reporting only the
    first error.  The individual causes are kept on :attr:`errors`
    (first error also chained as ``__cause__``); a run with exactly one
    error still raises that error directly, so existing handlers keep
    working.
    """

    code = "aggregate-worker-error"

    def __init__(self, message: str, errors: tuple[BaseException, ...] = ()) -> None:
        errors = tuple(errors)
        if errors:
            summary = "; ".join(repr(e) for e in errors[:4])
            if len(errors) > 4:
                summary += f"; ... ({len(errors) - 4} more)"
            message = f"{message}: {summary}"
        super().__init__(message)
        self.errors = errors

    def _payload_extra(self) -> dict[str, Any]:
        return {"errors": [error_to_payload(e) for e in self.errors]}

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "AggregateWorkerError":
        # The stored message already contains the per-error summary the
        # constructor appends, so rebuild the instance without rerunning
        # that formatting (round-trips must be exact).
        err = cls.__new__(cls)
        Exception.__init__(err, payload.get("message", ""))
        err.errors = tuple(
            error_from_payload(p) for p in payload.get("errors", ())
        )
        return err


class WorkloadError(ReproError):
    """A workload generator was configured with impossible parameters."""

    code = "workload-error"


class AddressInUseError(ReproError):
    """A server could not bind its listen address (already in use).

    Raised by the wire server (and the cluster launcher) instead of the
    raw ``OSError`` so callers — the CLI in particular — can report a
    clean, stable-coded failure rather than a traceback.
    """

    code = "address-in-use"

    def __init__(self, host: str, port: int) -> None:
        super().__init__(f"address {host}:{port} is already in use")
        self.host = host
        self.port = port

    def _payload_extra(self) -> dict[str, Any]:
        return {"host": self.host, "port": self.port}

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "AddressInUseError":
        return cls(payload.get("host", "?"), int(payload.get("port", 0)))


class CrashPoint(BaseException):
    """Simulated process death, raised by the fault-injection plane.

    Propagates out of :meth:`~repro.runtime.scheduler.Scheduler.run`
    leaving every task suspended exactly where it was — the state a real
    crash would leave behind.  Derives from :class:`BaseException` so no
    ``except Exception`` handler (application or kernel) can absorb the
    crash and keep executing; only the torture harness, which owns the
    run, catches it.
    """

    code = "crash-point"

    def __init__(self, site: str, detail: str = "") -> None:
        super().__init__(f"injected crash at {site}" + (f": {detail}" if detail else ""))
        self.site = site
        self.detail = detail

    def to_payload(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": str(self),
            "site": self.site,
            "detail": self.detail,
        }

    @classmethod
    def _from_payload(cls, payload: dict[str, Any]) -> "CrashPoint":
        return cls(payload.get("site", "?"), payload.get("detail", ""))


#: Maps every stable error code to its class, for payload decoding.
#: ``SubtransactionRestart`` is deliberately absent: it is in-process
#: control flow carrying a live transaction node and never crosses a
#: process boundary.
ERROR_CODES: dict[str, type[BaseException]] = {
    cls.code: cls  # type: ignore[attr-defined]
    for cls in (
        ReproError,
        SchemaError,
        UnknownObjectError,
        DuplicateRecordError,
        UnknownOperationError,
        TransactionError,
        TransactionAborted,
        DeadlockError,
        LockTimeout,
        RetryExhausted,
        DeadlineExceeded,
        RequestShed,
        ProtocolViolation,
        CompensationError,
        RuntimeEngineError,
        AggregateWorkerError,
        WorkloadError,
        AddressInUseError,
        CrashPoint,
    )
}


def error_to_payload(exc: BaseException) -> dict[str, Any]:
    """Serialise any exception to a JSON-safe payload.

    Library errors keep their stable code and structured fields; foreign
    exceptions are wrapped as ``internal-error`` with the type name
    preserved for diagnosis.
    """
    to_payload = getattr(exc, "to_payload", None)
    if to_payload is not None:
        return to_payload()
    return {
        "code": "internal-error",
        "message": str(exc),
        "type": type(exc).__name__,
    }


def error_from_payload(payload: dict[str, Any]) -> BaseException:
    """Reconstruct an exception from an :func:`error_to_payload` payload.

    Unknown codes (newer peer, foreign ``internal-error`` wrappers)
    decode to a plain :class:`ReproError` carrying the message, so old
    clients degrade gracefully instead of failing to parse.
    """
    cls = ERROR_CODES.get(payload.get("code", ""))
    if cls is None:
        return ReproError(payload.get("message", ""))
    return cls._from_payload(payload)  # type: ignore[attr-defined]

"""Exception hierarchy for the semantic concurrency control library.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single handler while still
being able to distinguish the interesting cases (deadlock-induced aborts,
protocol violations, schema errors).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """An object, type, or method definition is inconsistent.

    Raised for duplicate method names, unknown operations referenced by a
    compatibility matrix, attempts to give an object two composition
    parents (non-disjoint complex objects are out of scope), and similar
    definition-time mistakes.
    """


class UnknownObjectError(ReproError):
    """An OID does not resolve to a live object in the database."""


class DuplicateRecordError(UnknownObjectError):
    """An object that already has a storage record was allocated again.

    Historically this was (mis-)reported as :class:`UnknownObjectError`;
    the subclass keeps ``except UnknownObjectError`` handlers working
    while letting callers distinguish "no such record" from "record
    exists twice".
    """


class UnknownOperationError(ReproError):
    """An operation name is not defined for the target object's type."""


class TransactionError(ReproError):
    """Base class for errors tied to a specific transaction execution."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and must not continue.

    The kernel raises this inside a transaction's coroutine when the
    transaction is chosen as a deadlock victim or when the application
    requests a rollback.  User code should generally let it propagate;
    the kernel catches it at the transaction root and runs compensation.
    """

    def __init__(self, txn_name: str, reason: str) -> None:
        super().__init__(f"transaction {txn_name!r} aborted: {reason}")
        self.txn_name = txn_name
        self.reason = reason


class DeadlockError(TransactionAborted):
    """The transaction was selected as the victim of a deadlock cycle."""

    def __init__(self, txn_name: str, cycle: tuple[str, ...]) -> None:
        cycle_text = " -> ".join(cycle)
        super().__init__(txn_name, f"deadlock cycle {cycle_text}")
        self.cycle = cycle


class LockTimeout(TransactionAborted):
    """A lock wait exceeded the timeout budget and the waiter was sacrificed.

    Raised under the ``"timeout"`` deadlock policy (and by injected
    lock-wait timeout faults) when the waiter's blocked request cannot be
    resolved by restarting a subtransaction.  Semantically a timeout is
    handled exactly like a deadlock victim abort — compensation runs,
    the client may resubmit — but the distinct type keeps the two causes
    apart in handles, traces, and metrics.
    """

    def __init__(self, txn_name: str, target: str, waited: float) -> None:
        super().__init__(
            txn_name, f"lock wait on {target} timed out after {waited:g} virtual time"
        )
        self.target = target
        self.waited = waited


class RetryExhausted(TransactionAborted):
    """A subtransaction's bounded retry budget ran out.

    The :class:`~repro.txn.retry.RetryPolicy` escalates to a top-level
    abort once a single action has been restarted ``max_restarts`` times;
    the node id of the exhausted action is recorded for diagnosis.
    """

    def __init__(self, txn_name: str, node_id: str, attempts: int) -> None:
        super().__init__(
            txn_name,
            f"subtransaction {node_id} exhausted its retry budget "
            f"({attempts} restarts)",
        )
        self.node_id = node_id
        self.attempts = attempts


class SubtransactionRestart(BaseException):
    """Internal control-flow signal: roll back and retry one subtransaction.

    Raised into a transaction's coroutine when a deadlock cycle can be
    broken by restarting the victim's innermost active subtransaction
    instead of aborting the whole transaction (the standard multilevel
    transaction technique; cf. the paper's references [HW91, Wei91]).
    Derives from :class:`BaseException` so that application-level
    ``except Exception`` handlers in method bodies cannot swallow it;
    the kernel catches it at the owning subtransaction's frame.
    """

    def __init__(self, node) -> None:
        super().__init__(f"restart subtransaction {getattr(node, 'node_id', node)!r}")
        self.node = node
        # True once the victim machinery has charged this restart to the
        # transaction's restart budget; injected restarts are charged by
        # the kernel's retry loop instead.
        self.counted = False


class ProtocolViolation(ReproError):
    """Internal invariant of a concurrency control protocol was broken.

    Seeing this exception indicates a bug in a protocol implementation,
    not a recoverable runtime condition.
    """


class CompensationError(TransactionError):
    """A committed subtransaction could not be compensated during abort."""


class RuntimeEngineError(ReproError):
    """The execution runtime reached an inconsistent state.

    For example: all tasks are blocked but no deadlock cycle exists, or a
    coroutine awaited a foreign awaitable the scheduler cannot service.
    """


class AggregateWorkerError(RuntimeEngineError):
    """Several worker threads failed (or wedged) in one threaded run.

    The threaded runtimes collect every worker's error; when more than
    one survives the drain — or when workers fail to join at all — the
    run raises this aggregate instead of silently reporting only the
    first error.  The individual causes are kept on :attr:`errors`
    (first error also chained as ``__cause__``); a run with exactly one
    error still raises that error directly, so existing handlers keep
    working.
    """

    def __init__(self, message: str, errors: tuple[BaseException, ...] = ()) -> None:
        errors = tuple(errors)
        if errors:
            summary = "; ".join(repr(e) for e in errors[:4])
            if len(errors) > 4:
                summary += f"; ... ({len(errors) - 4} more)"
            message = f"{message}: {summary}"
        super().__init__(message)
        self.errors = errors


class WorkloadError(ReproError):
    """A workload generator was configured with impossible parameters."""


class CrashPoint(BaseException):
    """Simulated process death, raised by the fault-injection plane.

    Propagates out of :meth:`~repro.runtime.scheduler.Scheduler.run`
    leaving every task suspended exactly where it was — the state a real
    crash would leave behind.  Derives from :class:`BaseException` so no
    ``except Exception`` handler (application or kernel) can absorb the
    crash and keep executing; only the torture harness, which owns the
    run, catches it.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        super().__init__(f"injected crash at {site}" + (f": {detail}" if detail else ""))
        self.site = site
        self.detail = detail

"""The file-backed WAL: frame codec, torn tails, group commit, resume.

The torn-tail property is the heart of this suite: for *every*
byte-length prefix of a durable WAL file — as if the process died after
the OS had persisted exactly that many bytes — the recovery scan must
return precisely the complete, checksum-valid record prefix and never
raise.  A partial trailing frame (short header, short payload, or
corrupt checksum) is detected and discarded.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.recovery.wal import TxnStatusRecord, UpdateRecord, WriteAheadLog
from repro.storage.durable import DurableWriteAheadLog, load_wal_file
from repro.storage.walformat import (
    FRAME_HEADER,
    WAL_MAGIC,
    encode_frame,
    is_wal_file,
    iter_frames,
)
from tests.helpers import examples


def status(lsn: int, txn: str, what: str) -> TxnStatusRecord:
    return TxnStatusRecord(lsn=lsn, txn=txn, status=what)


def update(lsn: int, txn: str, payload: str = "x") -> UpdateRecord:
    return UpdateRecord(
        lsn=lsn,
        txn=txn,
        node_path=(f"{txn}:0",),
        operation="Put",
        target=(("Atom", "Root", payload),),
        before=0,
        after=len(payload),
    )


class TestFrameCodec:
    def test_round_trip(self):
        payloads = [b"a", b"bb" * 100, b"", b"\x00" * 9]
        data = WAL_MAGIC + b"".join(encode_frame(p) for p in payloads)
        scan = iter_frames(data)
        assert scan.payloads == payloads
        assert not scan.torn
        assert scan.valid_bytes == len(data)

    def test_corrupt_checksum_ends_scan(self):
        good, bad = encode_frame(b"good"), bytearray(encode_frame(b"bad!"))
        bad[-1] ^= 0xFF  # flip a payload bit: checksum mismatch
        scan = iter_frames(WAL_MAGIC + good + bytes(bad))
        assert scan.payloads == [b"good"]
        assert scan.torn and scan.torn_reason == "bad-checksum"

    def test_not_a_wal_file(self):
        assert not is_wal_file(b"definitely not")
        with pytest.raises(AssertionError):
            iter_frames(b"definitely not a wal file")


class TestTornTailProperty:
    """Recovery succeeds from EVERY byte-length prefix of the file."""

    @staticmethod
    def _durable_file(tmp_path, records):
        path = os.path.join(tmp_path, "wal.log")
        with DurableWriteAheadLog(path) as wal:
            for record in records:
                wal.append(record)
        return path

    @settings(max_examples=examples(60), deadline=None)
    @given(data=st.data(), n_records=st.integers(min_value=0, max_value=12))
    def test_every_truncation_offset(self, data, n_records):
        import tempfile

        records = []
        for i in range(n_records):
            txn = f"T{i % 3}"
            if i % 4 == 3:
                records.append(status(i + 1, txn, "commit"))
            elif i % 4 == 0:
                records.append(status(i + 1, txn, "begin"))
            else:
                records.append(update(i + 1, txn, payload="p" * (i * 7 % 40)))
        with tempfile.TemporaryDirectory(prefix="repro-torn-") as tmp:
            path = self._durable_file(tmp, records)
            with open(path, "rb") as fh:
                blob = fh.read()

            cut = data.draw(
                st.integers(min_value=len(WAL_MAGIC), max_value=len(blob)), label="cut"
            )
            torn_path = os.path.join(tmp, "torn.log")
            with open(torn_path, "wb") as fh:
                fh.write(blob[:cut])

            scan = load_wal_file(torn_path)  # must never raise
        survived = list(scan.log)
        # exactly the longest complete-frame prefix
        assert survived == records[: len(survived)]
        assert scan.valid_bytes + scan.torn_bytes == cut
        if scan.torn:
            assert scan.torn_reason in ("short-header", "short-payload", "bad-checksum")
            assert len(survived) < len(records)
        else:
            # a clean cut lands exactly on a frame boundary
            assert scan.valid_bytes == cut

    def test_every_offset_exhaustively_small(self, tmp_path):
        """Non-random belt: all offsets of a 3-record file."""
        records = [status(1, "T1", "begin"), update(2, "T1"), status(3, "T1", "commit")]
        path = self._durable_file(str(tmp_path), records)
        with open(path, "rb") as fh:
            blob = fh.read()
        for cut in range(len(WAL_MAGIC), len(blob) + 1):
            torn_path = str(tmp_path / "cut.log")
            with open(torn_path, "wb") as fh:
                fh.write(blob[:cut])
            scan = load_wal_file(torn_path)
            survived = list(scan.log)
            assert survived == records[: len(survived)]
            assert scan.valid_bytes <= cut

    def test_header_only_file_is_empty_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        DurableWriteAheadLog(path).close()
        scan = load_wal_file(path)
        assert len(scan.log) == 0 and not scan.torn


class TestGroupCommit:
    def _metrics(self):
        from repro.obs import MetricsRegistry

        return MetricsRegistry()

    def test_window_zero_syncs_every_commit(self, tmp_path):
        registry = self._metrics()
        with DurableWriteAheadLog(str(tmp_path / "wal.log")) as wal:
            wal.bind_metrics(registry)
            for i in range(5):
                wal.append(status(i * 2 + 1, f"T{i}", "begin"))
                wal.append(status(i * 2 + 2, f"T{i}", "commit"))
        assert registry.counter("wal.group_commit.commits").value == 5
        assert registry.counter("wal.group_commit.syncs").value >= 5
        assert registry.counter("wal.group_commit.deferred").value == 0
        assert wal.durable_lsn == 10

    def test_window_batches_commits(self, tmp_path):
        clock = [0.0]
        registry = self._metrics()
        wal = DurableWriteAheadLog(
            str(tmp_path / "wal.log"),
            group_commit_window=1.0,
            group_commit_max=4,
            clock=lambda: clock[0],
        )
        wal.bind_metrics(registry)
        for i in range(3):  # three commits inside one window: all deferred
            wal.append(status(i + 1, f"T{i}", "commit"))
        assert registry.counter("wal.group_commit.syncs").value == 0
        assert registry.counter("wal.group_commit.deferred").value == 3
        assert wal.durable_lsn == 0  # nothing fsynced yet

        wal.append(status(4, "T3", "commit"))  # 4th: batch cap forces the sync
        assert registry.counter("wal.group_commit.syncs").value == 1
        assert wal.durable_lsn == 4
        histogram = registry.histogram(
            "wal.group_commit.batch_size", (1, 2, 4, 8, 16, 32, 64)
        )
        assert histogram.mean == 4.0

        wal.append(status(5, "T4", "commit"))  # deferred again ...
        assert registry.counter("wal.group_commit.syncs").value == 1
        clock[0] = 2.0  # ... until the window expires
        wal.flush_if_due()
        assert registry.counter("wal.group_commit.syncs").value == 2
        assert wal.durable_lsn == 5
        wal.close()

    def test_expired_window_syncs_inline(self, tmp_path):
        clock = [0.0]
        wal = DurableWriteAheadLog(
            str(tmp_path / "wal.log"), group_commit_window=1.0, clock=lambda: clock[0]
        )
        wal.append(status(1, "T0", "commit"))
        assert wal.durable_lsn == 0
        clock[0] = 1.5
        wal.append(status(2, "T1", "commit"))  # window long gone: sync now
        assert wal.durable_lsn == 2
        wal.close()

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="window"):
            DurableWriteAheadLog(str(tmp_path / "w"), group_commit_window=-1)
        with pytest.raises(ValueError, match="max"):
            DurableWriteAheadLog(str(tmp_path / "w"), group_commit_max=0)


class TestResumeAndInterop:
    def test_resume_continues_after_surviving_records(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with DurableWriteAheadLog(path) as wal:
            wal.append(status(1, "T1", "begin"))
            wal.append(status(2, "T1", "commit"))
        resumed = DurableWriteAheadLog(path)
        assert [r.lsn for r in resumed] == [1, 2]
        assert resumed.durable_lsn == 2
        resumed.append(status(resumed.next_lsn(), "T2", "begin"))
        resumed.close()
        assert [r.lsn for r in load_wal_file(path).log] == [1, 2, 3]

    def test_resume_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with DurableWriteAheadLog(path) as wal:
            wal.append(status(1, "T1", "commit"))
        size = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(FRAME_HEADER.pack(1 << 20, 0) + b"partial")  # torn append
        resumed = DurableWriteAheadLog(path)
        assert [r.lsn for r in resumed] == [1]
        resumed.close()
        assert os.path.getsize(path) == size  # the torn tail is gone

    def test_save_durable_interops_with_incremental_writer(self, tmp_path):
        records = [status(1, "T1", "begin"), update(2, "T1"), status(3, "T1", "commit")]
        saved = str(tmp_path / "saved.log")
        WriteAheadLog(records=list(records)).save_durable(saved)
        appended = str(tmp_path / "appended.log")
        with DurableWriteAheadLog(appended) as wal:
            for record in records:
                wal.append(record)
        with open(saved, "rb") as fh, open(appended, "rb") as gh:
            assert fh.read() == gh.read()  # byte-identical formats
        assert list(WriteAheadLog.load(saved)) == records

    def test_load_autodetects_pickle_format(self, tmp_path):
        records = [status(1, "T1", "commit")]
        path = str(tmp_path / "pickled.wal")
        WriteAheadLog(records=list(records)).save(path)
        assert list(WriteAheadLog.load(path)) == records

    def test_load_wal_file_rejects_pickles(self, tmp_path):
        path = str(tmp_path / "pickled.wal")
        with open(path, "wb") as fh:
            pickle.dump([], fh)
        with pytest.raises(ValueError, match="not a durable WAL"):
            load_wal_file(path)

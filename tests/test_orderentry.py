"""Tests for the order-entry application: schema, methods, transactions."""

from __future__ import annotations


from repro.objects.schema import describe_database
from repro.orderentry.schema import (
    ITEM_TYPE,
    NO_SUCH_ORDER,
    ORDER_TYPE,
    PAID,
    SHIPPED,
    build_order_entry_database,
    render_status,
    type_matrices,
)
from repro.orderentry.transactions import (
    make_new_order_txn,
    make_t1,
    make_t2,
    make_t3,
    make_t4,
    make_t5,
)
from repro.semantics.invocation import Invocation

from tests.helpers import run_programs


class TestTypeDefinitions:
    def test_matrices_complete(self):
        assert ITEM_TYPE.matrix.is_complete()
        assert ORDER_TYPE.matrix.is_complete()

    def test_public_methods(self):
        assert set(ITEM_TYPE.public_methods) == {
            "NewOrder",
            "ShipOrder",
            "PayOrder",
            "TotalPayment",
            "Restock",
            "CheckStock",
        }
        assert set(ORDER_TYPE.public_methods) == {"ChangeStatus", "TestStatus"}

    def test_stock_management_entries(self):
        # Restock is a blind escrow increment: commutes with ShipOrder's
        # decrement and with itself, conflicts only with the QOH reader.
        m = ITEM_TYPE.matrix
        inv = Invocation
        assert m.compatible(inv("Restock", (5,)), inv("ShipOrder", (1,)))
        assert m.compatible(inv("Restock", (5,)), inv("Restock", (7,)))
        assert m.compatible(inv("Restock", (5,)), inv("NewOrder", (9, 1)))
        assert not m.compatible(inv("Restock", (5,)), inv("CheckStock", ()))
        assert not m.compatible(inv("CheckStock", ()), inv("ShipOrder", (1,)))
        assert m.compatible(inv("CheckStock", ()), inv("PayOrder", (1,)))
        assert m.compatible(inv("CheckStock", ()), inv("CheckStock", ()))

    def test_fig2_headline_entries(self):
        m = ITEM_TYPE.matrix
        inv = Invocation
        assert m.compatible(inv("ShipOrder", (1,)), inv("PayOrder", (1,)))
        assert m.compatible(inv("NewOrder", (9, 1)), inv("NewOrder", (8, 2)))
        assert not m.compatible(inv("NewOrder", (9, 1)), inv("ShipOrder", (1,)))
        assert not m.compatible(inv("PayOrder", (1,)), inv("TotalPayment", ()))
        assert m.compatible(inv("ShipOrder", (1,)), inv("TotalPayment", ()))
        # parameter dependence
        assert m.compatible(inv("ShipOrder", (1,)), inv("ShipOrder", (2,)))
        assert not m.compatible(inv("ShipOrder", (1,)), inv("ShipOrder", (1,)))

    def test_fig3_entries(self):
        m = ORDER_TYPE.matrix
        inv = Invocation
        assert m.compatible(inv("ChangeStatus", (SHIPPED,)), inv("ChangeStatus", (SHIPPED,)))
        assert m.compatible(inv("ChangeStatus", (SHIPPED,)), inv("TestStatus", (PAID,)))
        assert not m.compatible(inv("ChangeStatus", (PAID,)), inv("TestStatus", (PAID,)))
        assert m.compatible(inv("TestStatus", (SHIPPED,)), inv("TestStatus", (SHIPPED,)))

    def test_render_status(self):
        assert render_status(frozenset()) == "new"
        assert render_status(frozenset({SHIPPED})) == "shipped"
        assert render_status(frozenset({SHIPPED, PAID})) == "paid&shipped"

    def test_type_matrices_export(self):
        matrices = type_matrices()
        assert matrices["Item"] is ITEM_TYPE.matrix
        assert matrices["Order"] is ORDER_TYPE.matrix


class TestDatabaseConstruction:
    def test_structure(self, order_entry):
        assert len(order_entry.items) == 2
        item = order_entry.item(0)
        assert item.spec is ITEM_TYPE
        assert item.impl_component("QOH").raw_get() == 1000
        orders = item.impl_component("Orders")
        assert orders.raw_size() == 2

    def test_next_order_counter_seeded(self, order_entry):
        counter = order_entry.item(0).impl_component("NextOrderNo")
        assert counter.raw_get() == 2  # two pre-populated orders

    def test_schema_graph_matches_fig1(self, order_entry):
        graph = describe_database(order_entry.db)
        tree = graph.format_tree("DB")
        assert "Items" in tree
        assert "Item" in tree
        assert "Orders" in tree
        assert "Order" in tree
        assert "Status" in tree

    def test_initial_status(self):
        built = build_order_entry_database(initial_events=frozenset({PAID}))
        assert PAID in built.status_atom(0, 0).raw_get()


class TestMethods:
    def test_new_order_assigns_sequential_numbers(self, order_entry):
        item = order_entry.item(0)

        async def program(tx):
            first = await tx.call(item, "NewOrder", 900, 1)
            second = await tx.call(item, "NewOrder", 901, 2)
            return (first, second)

        kernel = run_programs(order_entry.db, {"T": program})
        assert kernel.handles["T"].result == (3, 4)
        orders = item.impl_component("Orders")
        assert orders.raw_size() == 4

    def test_ship_order_updates_qoh_and_status(self, order_entry):
        item = order_entry.item(0)

        async def program(tx):
            return await tx.call(item, "ShipOrder", 1)

        kernel = run_programs(order_entry.db, {"T": program})
        assert kernel.handles["T"].result == "shipped"
        assert item.impl_component("QOH").raw_get() == 999
        assert SHIPPED in order_entry.status_atom(0, 0).raw_get()

    def test_ship_missing_order(self, order_entry):
        async def program(tx):
            return await tx.call(order_entry.item(0), "ShipOrder", 77)

        kernel = run_programs(order_entry.db, {"T": program})
        assert kernel.handles["T"].result == NO_SUCH_ORDER

    def test_pay_then_total_payment(self, order_entry):
        item = order_entry.item(0)

        async def program(tx):
            await tx.call(item, "PayOrder", 1)
            await tx.call(item, "PayOrder", 2)
            return await tx.call(item, "TotalPayment")

        kernel = run_programs(order_entry.db, {"T": program})
        # two orders of quantity 1 at price 10
        assert kernel.handles["T"].result == 20

    def test_total_payment_ignores_unpaid(self, order_entry):
        async def program(tx):
            return await tx.call(order_entry.item(0), "TotalPayment")

        kernel = run_programs(order_entry.db, {"T": program})
        assert kernel.handles["T"].result == 0

    def test_change_and_test_status(self, order_entry):
        order = order_entry.order(0, 0)

        async def program(tx):
            before = await tx.call(order, "TestStatus", SHIPPED)
            await tx.call(order, "ChangeStatus", SHIPPED)
            after = await tx.call(order, "TestStatus", SHIPPED)
            return (before, after)

        kernel = run_programs(order_entry.db, {"T": program})
        assert kernel.handles["T"].result == (False, True)

    def test_status_is_event_set_not_ordered(self, order_entry):
        """ChangeStatus adds to a set; order of events is forgotten."""
        order = order_entry.order(0, 0)

        async def program(tx):
            await tx.call(order, "ChangeStatus", PAID)
            await tx.call(order, "ChangeStatus", SHIPPED)

        run_programs(order_entry.db, {"T": program})
        assert order_entry.status_atom(0, 0).raw_get().events == frozenset({PAID, SHIPPED})


class TestTransactionTypes:
    def test_t1_ships_two_items(self, order_entry):
        program = make_t1(order_entry.item(0), 1, order_entry.item(1), 2)
        kernel = run_programs(order_entry.db, {"T1": program})
        assert kernel.handles["T1"].result == ("shipped", "shipped")

    def test_t2_pays_two_items(self, order_entry):
        program = make_t2(order_entry.item(0), 1, order_entry.item(1), 2)
        kernel = run_programs(order_entry.db, {"T2": program})
        assert kernel.handles["T2"].result == ("paid", "paid")
        assert PAID in order_entry.status_atom(0, 0).raw_get()

    def test_t3_t4_bypass_items(self, order_entry):
        t3 = make_t3(order_entry.order(0, 0), order_entry.order(1, 0))
        t4 = make_t4(order_entry.order(0, 1), order_entry.order(1, 1))
        kernel = run_programs(order_entry.db, {"T3": t3, "T4": t4})
        assert kernel.handles["T3"].result == (False, False)
        assert kernel.handles["T4"].result == (False, False)

    def test_t5_total(self, order_entry):
        pay = make_t2(order_entry.item(0), 1, order_entry.item(0), 2)
        kernel = run_programs(order_entry.db, {"P": pay})
        t5 = make_t5(order_entry.item(0))
        kernel = run_programs(order_entry.db, {"T5": t5})
        assert kernel.handles["T5"].result == 20

    def test_new_order_txn(self, order_entry):
        program = make_new_order_txn(order_entry.item(1), 555, 9)
        kernel = run_programs(order_entry.db, {"N": program})
        assert kernel.handles["N"].result == 3

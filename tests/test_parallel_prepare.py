"""Deterministic interleavings of the router's parallel prepare fan-out.

No real shards: the router's per-shard :class:`ShardLink` objects are
replaced with in-process fakes whose prepare replies are orchestrated by
events, so the interleavings under test — a slow shard still preparing
while a failing shard triggers the early abort, a bounded pool skipping
a branch the abort beat to the socket — happen on every run instead of
once in a thousand.  The fakes record every message, which is how the
tests assert *wire-visible* behavior: who was prepared, who got the
abort, and what the coordinator log said while prepares were still in
flight.
"""

from __future__ import annotations

import threading

from repro.cluster.router import ClusterRouter, CoordinatorLog
from repro.server.requests import Request


class FakeLink:
    """Stands in for one shard's ShardLink; scripted per-op behavior."""

    def __init__(self, shard: int, log: CoordinatorLog) -> None:
        self.shard = shard
        self.log = log
        self.sent: list[dict] = []
        self.lock = threading.Lock()
        self.prepare_gate: threading.Event | None = None  # block prepare until set
        self.prepare_entered = threading.Event()
        self.fail_prepare = False
        self.down = False

    def request(self, message: dict) -> dict:
        with self.lock:
            self.sent.append(dict(message))
        if self.down:
            raise ConnectionError(f"fake shard {self.shard} is down")
        op = message["op"]
        if op == "2pc-prepare":
            self.prepare_entered.set()
            if self.prepare_gate is not None:
                assert self.prepare_gate.wait(10.0), "prepare gate never opened"
            if self.fail_prepare:
                return {
                    "status": "aborted",
                    "error": {"code": "conflict", "message": "scripted failure"},
                }
            return {"status": "prepared", "result": 1, "queue_wait": 0.0,
                    "total_time": 0.0}
        if op in ("2pc-commit", "2pc-abort"):
            return {
                "status": "ok",
                "result": "committed" if op == "2pc-commit" else "aborted",
                "ack_hwm": 0,
            }
        raise AssertionError(f"unexpected op {op!r}")

    def ops(self, op: str) -> list[dict]:
        with self.lock:
            return [m for m in self.sent if m["op"] == op]

    def close(self) -> None:
        return None


def make_router(tmp_path, n_shards: int = 3, **kwargs) -> tuple[ClusterRouter, list[FakeLink]]:
    log = CoordinatorLog(str(tmp_path / "coordinator.log"))
    router = ClusterRouter(
        [("127.0.0.1", 1 + i) for i in range(n_shards)],
        log,
        **kwargs,
    )
    fakes = [FakeLink(i, log) for i in range(n_shards)]
    for link in router.links:
        link.close()
    router.links = fakes  # type: ignore[assignment]
    return router, fakes


def cross_request(n: int, rid: str = "t-x") -> Request:
    # total-payment over explicit items; the test bypasses planning by
    # branch count only, so any op with per-shard branches would do.
    return Request(op="total-payment", items=tuple(range(n)), request_id=rid)


def run_branches(router: ClusterRouter, branches: dict) -> object:
    request = cross_request(len(branches))
    return router._run_two_phase(request, branches)


def branch_map(fakes, shards) -> dict:
    return {
        s: Request(op="total-payment", items=(s,), request_id=f"t-x@s{s}")
        for s in shards
    }


class TestEarlyAbortInterleaving:
    def test_slow_prepared_branch_is_compensated_after_early_abort(self, tmp_path):
        """Slow shard + failing shard: the early abort is durable before
        the slow prepare settles, and the slow (prepared) branch still
        gets its 2pc-abort."""
        router, fakes = make_router(tmp_path, n_shards=3, max_fanout=4)
        slow, failing = fakes[0], fakes[1]
        slow.prepare_gate = threading.Event()
        failing.fail_prepare = True
        failing.prepare_gate = threading.Event()

        observed_while_slow_inflight: dict[str, str] = {}

        def unblock() -> None:
            # Wait until both the slow and failing prepares are on the
            # wire, let the failure land first, then observe the log
            # *while the slow prepare is still in flight*, then release it.
            assert slow.prepare_entered.wait(10.0)
            assert failing.prepare_entered.wait(10.0)
            failing.prepare_gate.set()
            deadline = threading.Event()
            for _ in range(2000):
                gtids = [g for g in router.log.decisions()]
                if gtids:
                    observed_while_slow_inflight[gtids[0]] = router.log.decisions()[
                        gtids[0]
                    ]
                    break
                deadline.wait(0.005)
            slow.prepare_gate.set()

        orchestrator = threading.Thread(target=unblock)
        orchestrator.start()
        try:
            response = run_branches(router, branch_map(fakes, [0, 1, 2]))
        finally:
            orchestrator.join(timeout=10.0)
        assert response.status == "aborted"
        # The abort was fsynced while the slow prepare was still blocked.
        assert list(observed_while_slow_inflight.values()) == ["abort"]
        # Every contacted shard got the abort — including the slow one
        # whose branch had locally committed and must compensate.
        assert len(slow.ops("2pc-abort")) == 1
        assert len(failing.ops("2pc-abort")) == 1
        assert slow.ops("2pc-commit") == []
        router.close()
        router.log.close()

    def test_dead_shard_triggers_early_abort_of_prepared_branches(self, tmp_path):
        router, fakes = make_router(tmp_path, n_shards=2, max_fanout=4)
        fakes[1].down = True
        response = run_branches(router, branch_map(fakes, [0, 1]))
        assert response.status == "failed"
        assert response.error["code"] == "shard-down"
        # The live shard prepared and was told to abort; the dead shard
        # got (at most) failed sends, never a commit.
        assert len(fakes[0].ops("2pc-abort")) == 1
        assert fakes[0].ops("2pc-commit") == []
        gtid = next(iter(router.log.decisions()))
        assert router.log.decisions()[gtid] == "abort"
        router.close()
        router.log.close()

    def test_bounded_pool_skips_unsent_branches_after_abort(self, tmp_path):
        """With one worker, a first-branch failure decides abort before
        the other branches' prepares are ever submitted — they are
        skipped entirely (presumed abort covers them) and excluded from
        the decision's shard list."""
        router, fakes = make_router(tmp_path, n_shards=3, max_fanout=1)
        fakes[0].fail_prepare = True
        response = run_branches(router, branch_map(fakes, [0, 1, 2]))
        assert response.status == "aborted"
        # Exactly one prepare hit a socket; shards 1 and 2 never heard
        # of the gtid and get no abort either.
        assert len(fakes[0].ops("2pc-prepare")) == 1
        assert fakes[1].sent == []
        assert fakes[2].sent == []
        skipped = router.obs.counter("2pc.prepare.fanout.skipped").value
        assert skipped == 2
        # The decision's shard list covers only the contacted shard, so
        # the single inline ack from its abort already made the entry
        # compactable.
        gtid = next(iter(router.log.decisions()))
        assert router.log.ack(gtid, 0) is False  # duplicate of the inline ack
        assert router.log.compactable == 1
        router.close()
        router.log.close()

    def test_early_abort_is_decided_once(self, tmp_path):
        # Two failing branches race to decide; the log must end up with
        # one abort decision and the early-abort metric must not double.
        router, fakes = make_router(tmp_path, n_shards=2, max_fanout=4)
        fakes[0].fail_prepare = True
        fakes[1].fail_prepare = True
        response = run_branches(router, branch_map(fakes, [0, 1]))
        assert response.status == "aborted"
        assert len(router.log.decisions()) == 1
        assert router.obs.counter("2pc.prepare.fanout.early_aborts").value == 1
        router.close()
        router.log.close()


class TestCommitFanOut:
    def test_all_prepared_commits_and_acks_inline(self, tmp_path):
        router, fakes = make_router(tmp_path, n_shards=3, max_fanout=4)
        response = run_branches(router, branch_map(fakes, [0, 1, 2]))
        assert response.status == "ok"
        for fake in fakes:
            assert len(fake.ops("2pc-commit")) == 1
            # The decision send carries the per-shard seq the shard acks.
            assert fake.ops("2pc-commit")[0]["seq"] == 1
        gtid = next(iter(router.log.decisions()))
        assert router.log.decisions()[gtid] == "commit"
        # All three inline acks landed: the entry is fully acked.
        assert router.log.compactable == 1
        router.close()
        router.log.close()

    def test_threshold_compaction_runs_inline(self, tmp_path):
        router, fakes = make_router(
            tmp_path, n_shards=2, max_fanout=4, compact_threshold=3
        )
        for i in range(4):
            request = Request(
                op="total-payment", items=(0, 1), request_id=f"t-{i}"
            )
            response = router._run_two_phase(request, branch_map(fakes, [0, 1]))
            assert response.status == "ok"
        assert router.obs.counter("coordlog.compact.runs").value >= 1
        assert router.obs.counter("coordlog.compact.dropped").value >= 3
        # Everything committed and acked: the file is (near) empty while
        # the in-memory decision map stays complete.
        assert router.log.file_entries() <= 1
        assert len(router.log.decisions()) == 4
        router.close()
        router.log.close()

    def test_sequential_mode_still_commits(self, tmp_path):
        router, fakes = make_router(
            tmp_path, n_shards=2, max_fanout=4, parallel_prepare=False
        )
        assert router._fanout is None
        response = run_branches(router, branch_map(fakes, [0, 1]))
        assert response.status == "ok"
        assert router.obs.counter("2pc.prepare.fanout.waves").value == 0
        assert router.log.compactable == 1
        router.close()
        router.log.close()

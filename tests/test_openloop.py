"""Open-loop generator determinism and admission-control properties.

The two satellite guarantees of the overload work: (1) the load
generator is a pure function of its config — same seed, same arrival
times, same keys, same op mix — so saturation curves are comparable
across runs and machines; (2) admission control is *bounded* no matter
what sequence of arrivals, completions, and mode flips hits it — queue
depth never exceeds the configured cap, in-flight never exceeds the
slot count, and every shed tells the client a positive ``retry_after``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.baseline import Tolerance
from repro.bench.openloop import (
    SERVER_SCHEMA,
    SERVER_SCHEMA_VERSION,
    OpenLoopConfig,
    compare_server,
    generate_arrivals,
    percentile,
    run_open_loop,
)
from repro.errors import RequestShed
from repro.server.admission import AdmissionConfig, AdmissionController
from repro.server.requests import READ_OPS, WRITE_OPS, op_class


# ----------------------------------------------------------------------
# Generator determinism
# ----------------------------------------------------------------------
class TestGeneratorDeterminism:
    def test_same_seed_same_schedule(self):
        config = OpenLoopConfig(rate=200, duration=1.0, seed=17)
        first = generate_arrivals(config)
        second = generate_arrivals(config)
        assert first == second
        assert len(first) > 50

    def test_schedule_covers_arrival_times_keys_and_ops(self):
        config = OpenLoopConfig(rate=300, duration=1.0, seed=3)
        arrivals = generate_arrivals(config)
        assert all(0 <= a.at < config.duration for a in arrivals)
        ats = [a.at for a in arrivals]
        assert ats == sorted(ats)
        items = {a.request.item for a in arrivals}
        assert items <= set(range(config.n_items))
        ops = {a.request.op for a in arrivals}
        assert ops <= READ_OPS | WRITE_OPS
        assert any(op_class(op) == "read" for op in ops)
        assert any(op_class(op) == "write" for op in ops)

    def test_different_seed_different_schedule(self):
        base = OpenLoopConfig(rate=200, duration=1.0, seed=1)
        other = OpenLoopConfig(rate=200, duration=1.0, seed=2)
        assert generate_arrivals(base) != generate_arrivals(other)

    def test_zipf_skews_toward_hot_item(self):
        config = OpenLoopConfig(rate=500, duration=2.0, seed=9, zipf_s=1.5, n_items=4)
        arrivals = generate_arrivals(config)
        counts = [0] * config.n_items
        for a in arrivals:
            counts[a.request.item] += 1
        assert counts[0] == max(counts)
        assert counts[0] > counts[-1]

    def test_every_request_carries_deadline_and_id(self):
        arrivals = generate_arrivals(OpenLoopConfig(rate=100, duration=0.5, seed=4))
        assert all(a.request.deadline == 0.25 for a in arrivals)
        assert len({a.request.request_id for a in arrivals}) == len(arrivals)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            generate_arrivals(OpenLoopConfig(rate=0))
        with pytest.raises(ValueError):
            generate_arrivals(OpenLoopConfig(n_items=0))


class TestPercentile:
    def test_empty(self):
        assert percentile([], 95) == 0.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0
        assert abs(percentile(values, 50) - 50.0) <= 1.0


# ----------------------------------------------------------------------
# Admission bounds (property-based)
# ----------------------------------------------------------------------
#: One abstract event: admit a read, admit a write, finish an in-flight
#: request (with some service time), or flip degraded mode.
EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("admit"), st.sampled_from(["read", "write"]),
                  st.floats(min_value=0.0, max_value=2.0)),
        st.tuples(st.just("finish"), st.just(""),
                  st.floats(min_value=0.0, max_value=0.5)),
        st.tuples(st.just("degrade"), st.just(""), st.booleans()),
    ),
    min_size=1,
    max_size=200,
)


class TestAdmissionProperties:
    @given(events=EVENTS, max_inflight=st.integers(1, 4), queue_cap=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_bounds_hold_under_any_event_sequence(self, events, max_inflight, queue_cap):
        clock = [0.0]
        control = AdmissionController(
            AdmissionConfig(max_inflight=max_inflight, queue_cap=queue_cap),
            clock=lambda: clock[0],
        )
        inflight = 0
        for index, (kind, klass, value) in enumerate(events):
            clock[0] += 0.01
            if kind == "admit":
                shed = control.admit(f"t{index}", klass, clock[0] + value)
                if shed is not None:
                    assert isinstance(shed, RequestShed)
                    assert shed.retry_after >= control.config.min_retry_after > 0
                    assert shed.reason_code in {
                        "queue-full", "deadline-unmeetable", "degraded-writes",
                        "draining", "expired-in-queue",
                    }
                ticket, expired = control.acquire_next(clock[0])
                if ticket is not None:
                    inflight += 1
            elif kind == "finish" and inflight > 0:
                control.release(value)
                inflight -= 1
                ticket, expired = control.acquire_next(clock[0])
                if ticket is not None:
                    inflight += 1
            elif kind == "degrade":
                control.set_degraded(value)
            # The two bounds, checked after every single event.
            assert control.depth("read") <= queue_cap
            assert control.depth("write") <= queue_cap
            assert control.inflight <= max_inflight
            assert control.inflight == inflight

    def test_draining_sheds_everything(self):
        control = AdmissionController(AdmissionConfig())
        control.close()
        shed = control.admit("t", "read", 1e9)
        assert shed is not None and shed.reason_code == "draining"

    def test_degraded_sheds_writes_admits_reads(self):
        control = AdmissionController(AdmissionConfig())
        control.set_degraded(True)
        assert control.admit("w", "write", 1e9).reason_code == "degraded-writes"
        assert control.admit("r", "read", 1e9) is None

    def test_expired_in_queue_recheck_at_dequeue(self):
        clock = [0.0]
        control = AdmissionController(AdmissionConfig(), clock=lambda: clock[0])
        assert control.admit("doomed", "read", 0.05) is None
        clock[0] = 1.0
        ticket, expired = control.acquire_next(clock[0])
        assert ticket is None and expired == ["doomed"]
        assert control.expired_retry_hint("read") > 0

    def test_release_without_acquire_raises(self):
        control = AdmissionController(AdmissionConfig())
        with pytest.raises(ValueError):
            control.release(0.01)


# ----------------------------------------------------------------------
# A short real run plus the baseline comparison plumbing
# ----------------------------------------------------------------------
class TestOpenLoopRun:
    def test_underload_run_commits_everything(self):
        config = OpenLoopConfig(rate=30, duration=0.4, seed=5, think_cost=5.0)
        result = run_open_loop(config, protocol="semantic")
        assert result.offered == len(generate_arrivals(config))
        assert result.ok + result.aborted + result.failed + result.shed == result.offered
        assert result.unanswered == 0
        assert result.failed == 0
        assert result.ok > 0
        assert result.drain_clean
        record = result.metrics_record()
        assert record["goodput"] > 0
        assert record["p95_latency"] >= record["p50_latency"] >= 0


def _doc(goodput: float, drain_clean: float = 1.0) -> dict:
    return {
        "schema": SERVER_SCHEMA,
        "schema_version": SERVER_SCHEMA_VERSION,
        "workloads": {
            "semantic_r40": {
                "config": {"protocol": "semantic", "rate": 40.0},
                "metrics": {"goodput": goodput, "drain_clean": drain_clean},
            }
        },
    }


class TestCompareServer:
    def test_matching_docs_pass(self):
        result = compare_server(_doc(30.0), _doc(30.0))
        assert result.ok, result.summary()

    def test_goodput_collapse_fails(self):
        result = compare_server(_doc(30.0), _doc(1.0))
        assert not result.ok
        assert any(row.metric == "goodput" for row in result.regressions)

    def test_dirty_drain_fails(self):
        result = compare_server(_doc(30.0), _doc(30.0, drain_clean=0.0))
        assert not result.ok

    def test_schema_mismatch_is_an_error(self):
        bad = _doc(30.0)
        bad["schema"] = "something-else"
        result = compare_server(bad, _doc(30.0))
        assert result.errors and not result.ok

    def test_custom_tolerance_applies(self):
        result = compare_server(
            _doc(30.0), _doc(29.0),
            tolerances={"goodput": Tolerance("higher_is_better", abs_=0.5)},
        )
        assert not result.ok

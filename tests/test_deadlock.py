"""Integration tests: deadlock detection, victim choice, resolution."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError
from repro.objects.database import Database

from tests.helpers import run_programs


@pytest.fixture
def two_atoms(db: Database):
    x = db.new_atom("x", 0)
    y = db.new_atom("y", 0)
    db.attach_child(x)
    db.attach_child(y)
    return db, x, y


def opposing_programs(x, y):
    async def ab(tx):
        await tx.put(x, "A")
        await tx.pause()
        await tx.put(y, "A")
        return "A-done"

    async def ba(tx):
        await tx.put(y, "B")
        await tx.pause()
        await tx.put(x, "B")
        return "B-done"

    return ab, ba


class TestDeadlockResolution:
    def test_opposing_lock_order_deadlocks_and_resolves(self, two_atoms):
        db, x, y = two_atoms
        ab, ba = opposing_programs(x, y)
        kernel = run_programs(db, {"A": ab, "B": ba})
        assert kernel.metrics.deadlocks == 1
        outcomes = {n: h.committed for n, h in kernel.handles.items()}
        assert sum(outcomes.values()) == 1  # exactly one survivor

    def test_victim_is_youngest(self, two_atoms):
        db, x, y = two_atoms
        ab, ba = opposing_programs(x, y)
        kernel = run_programs(db, {"A": ab, "B": ba})
        # B began after A, so B (the youngest) is the victim.
        assert kernel.handles["A"].committed
        assert kernel.handles["B"].aborted
        assert isinstance(kernel.handles["B"].error, DeadlockError)

    def test_victim_effects_undone(self, two_atoms):
        db, x, y = two_atoms
        ab, ba = opposing_programs(x, y)
        run_programs(db, {"A": ab, "B": ba})
        # survivor A wrote both atoms; B's write to y was rolled back
        # before A's write was applied, so both atoms read "A"
        assert x.raw_get() == "A"
        assert y.raw_get() == "A"

    def test_deadlock_error_names_cycle(self, two_atoms):
        db, x, y = two_atoms
        ab, ba = opposing_programs(x, y)
        kernel = run_programs(db, {"A": ab, "B": ba})
        error = kernel.handles["B"].error
        assert isinstance(error, DeadlockError)
        assert set(error.cycle) == {"A", "B"}

    def test_three_way_deadlock(self, db):
        atoms = []
        for name in ("x", "y", "z"):
            atom = db.new_atom(name, 0)
            db.attach_child(atom)
            atoms.append(atom)
        x, y, z = atoms

        def chain(first, second, tag):
            async def program(tx):
                await tx.put(first, tag)
                for __ in range(2):
                    await tx.pause()
                await tx.put(second, tag)
            return program

        kernel = run_programs(
            db, {"A": chain(x, y, "A"), "B": chain(y, z, "B"), "C": chain(z, x, "C")}
        )
        committed = [n for n, h in kernel.handles.items() if h.committed]
        aborted = [n for n, h in kernel.handles.items() if h.aborted]
        assert len(committed) + len(aborted) == 3
        assert kernel.metrics.deadlocks >= 1
        assert len(committed) >= 1  # someone always survives

    def test_no_false_deadlocks_on_plain_contention(self, db):
        atom = db.new_atom("x", 0)
        db.attach_child(atom)

        def writer(tag):
            async def program(tx):
                value = await tx.get(atom)
                await tx.put(atom, value + 1)
            return program

        kernel = run_programs(db, {f"T{i}": writer(i) for i in range(4)})
        # Direct leaf accesses under the root have no restartable
        # subtransaction scope, so any Get/Get->Put/Put upgrade cycle
        # must be resolved by full aborts — but simple FIFO waiting
        # (e.g. each waiting for the previous commit) must not abort.
        assert kernel.metrics.commits + kernel.metrics.aborts == 4
        assert kernel.metrics.commits >= 1

    def test_all_locks_clean_after_resolution(self, two_atoms):
        db, x, y = two_atoms
        ab, ba = opposing_programs(x, y)
        kernel = run_programs(db, {"A": ab, "B": ba})
        assert kernel.locks.lock_count == 0
        assert kernel.locks.pending_count == 0
        assert kernel.waits.edge_count == 0

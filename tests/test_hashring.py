"""Property tests (hypothesis) for the consistent-hash router ring.

The cluster's correctness leans on three ring properties: the mapping
is a pure function of (key, n_shards, vnodes) so every router process
and every shard restart agrees; the keyspace splits near-evenly so one
shard cannot become the cluster; and growing the ring by one shard
relocates only ~1/(N+1) of the keys, so a resharding step is
incremental rather than a full shuffle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hashring import DEFAULT_VNODES, HashRing

keys = st.one_of(
    st.integers(min_value=0, max_value=2**31),
    st.text(min_size=0, max_size=32),
)


class TestDeterminism:
    @settings(max_examples=80, deadline=None)
    @given(key=keys, n_shards=st.integers(min_value=1, max_value=8))
    def test_two_rings_always_agree(self, key, n_shards):
        a = HashRing(n_shards)
        b = HashRing(n_shards)
        assert a.shard_for(key) == b.shard_for(key)

    @settings(max_examples=80, deadline=None)
    @given(key=keys, n_shards=st.integers(min_value=1, max_value=8))
    def test_owner_is_in_range(self, key, n_shards):
        assert 0 <= HashRing(n_shards).shard_for(key) < n_shards

    def test_assignments_are_pinned_across_releases(self):
        # The torture oracle and the docs both rely on this exact split
        # of item roots 0..7 over two shards; a silent hash change would
        # orphan every durable partition.
        ring = HashRing(2)
        assert [ring.shard_for(i) for i in range(8)] == [1, 1, 1, 0, 0, 0, 0, 1]

    def test_rejects_degenerate_rings(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


class TestUniformity:
    def test_four_shards_split_keys_near_evenly(self):
        ring = HashRing(4, vnodes=DEFAULT_VNODES)
        counts = [0] * 4
        n_keys = 1024
        for key in range(n_keys):
            counts[ring.shard_for(key)] += 1
        expected = n_keys / 4
        for shard, count in enumerate(counts):
            assert expected / 2 <= count <= expected * 2, (
                f"shard {shard} owns {count} of {n_keys} keys: {counts}"
            )


class TestStabilityUnderGrowth:
    @settings(max_examples=6, deadline=None)
    @given(n_shards=st.integers(min_value=1, max_value=6))
    def test_adding_a_shard_relocates_about_one_nth(self, n_shards):
        before = HashRing(n_shards)
        after = HashRing(n_shards + 1)
        n_keys = 1024
        moved = sum(
            1 for key in range(n_keys)
            if before.shard_for(key) != after.shard_for(key)
        )
        ideal = n_keys / (n_shards + 1)
        # Far below modulo hashing's ~n/(n+1) reshuffle, near the 1/(n+1)
        # consistent-hashing ideal (loose bounds: vnode placement jitter).
        assert ideal * 0.35 <= moved <= ideal * 2.2, (
            f"{moved} of {n_keys} keys moved growing {n_shards}->{n_shards + 1} "
            f"(ideal {ideal:.0f})"
        )

    @settings(max_examples=20, deadline=None)
    @given(key=keys, n_shards=st.integers(min_value=1, max_value=6))
    def test_unmoved_keys_keep_their_owner(self, key, n_shards):
        before = HashRing(n_shards)
        after = HashRing(n_shards + 1)
        if after.shard_for(key) != n_shards:
            assert after.shard_for(key) == before.shard_for(key)

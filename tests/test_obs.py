"""Unit tests for the observability layer (repro.obs).

Covers the instrument semantics (counter, gauge + high-water mark,
fixed-bucket histogram, timer), registry get-or-create behaviour,
snapshot comparability / merging, and the JSONL round trip.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    CASE1_RELIEF,
    CONFLICT_CASES,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    Snapshot,
    conflict_breakdown,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = MetricsRegistry().counter("events")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_reset(self):
        c = MetricsRegistry().counter("events")
        c.inc(7)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_tracks_high_water_mark(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1
        assert g.hwm == 3

    def test_inc_updates_hwm_dec_does_not(self):
        g = MetricsRegistry().gauge("depth")
        g.inc(2)
        g.inc(2)
        g.dec(3)
        assert g.value == 1
        assert g.hwm == 4

    def test_reset_clears_value_and_hwm(self):
        g = MetricsRegistry().gauge("depth")
        g.set(9)
        g.reset()
        assert g.value == 0.0
        assert g.hwm == 0.0


class TestHistogram:
    def test_bounds_are_inclusive_upper_bounds(self):
        h = Histogram("h", bounds=(1, 2, 5))
        for value in (0.5, 1.0, 1.1, 2.0, 5.0, 6.0):
            h.observe(value)
        # <=1: {0.5, 1.0}; <=2: {1.1, 2.0}; <=5: {5.0}; overflow: {6.0}
        assert h.counts == [2, 2, 1, 1]

    def test_sum_count_mean_exact(self):
        h = Histogram("h", bounds=(10,))
        h.observe(1)
        h.observe(2)
        h.observe(4)
        assert h.count == 3
        assert h.sum == 7
        assert h.mean == pytest.approx(7 / 3)

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_unsorted_or_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(5, 1))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_reset_keeps_bucket_layout(self):
        h = Histogram("h", bounds=(1, 2))
        h.observe(1.5)
        h.reset()
        assert h.counts == [0, 0, 0]
        assert h.count == 0
        assert h.bounds == (1.0, 2.0)


class TestTimer:
    def test_timer_observes_block_duration(self):
        ticks = iter([10.0, 10.5, 20.0, 20.25])
        registry = MetricsRegistry()
        timer = registry.timer("span", clock=lambda: next(ticks), bounds=(1.0,))
        with timer:
            pass
        assert timer.last == pytest.approx(0.5)
        with timer:
            pass
        assert timer.last == pytest.approx(0.25)
        hist = registry.histogram("span")
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.75)

    def test_timer_records_even_when_block_raises(self):
        ticks = iter([0.0, 2.0])
        registry = MetricsRegistry()
        timer = registry.timer("span", clock=lambda: next(ticks), bounds=(1.0,))
        with pytest.raises(RuntimeError):
            with timer:
                raise RuntimeError("boom")
        assert registry.histogram("span").count == 1
        assert timer.last == pytest.approx(2.0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_histogram_redeclare_same_bounds_ok(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", (1, 2))
        assert registry.histogram("h", (1, 2)) is first
        assert registry.histogram("h") is first  # bounds omitted: reuse

    def test_histogram_redeclare_different_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 2, 3))

    def test_default_bounds_used_when_unspecified(self):
        assert MetricsRegistry().histogram("h").bounds == tuple(
            float(b) for b in DEFAULT_BUCKETS
        )

    def test_reset_zeroes_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(5)
        registry.histogram("h", (1,)).observe(0.5)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot.counter("c") == 0
        assert snapshot.gauge("g") == 0.0
        assert snapshot.gauge_hwm("g") == 0.0
        assert snapshot.histogram("h").count == 0


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("kernel.commits").inc(4)
    registry.counter("lock.grants").inc(11)
    gauge = registry.gauge("lock.held")
    gauge.set(6)
    gauge.set(2)
    hist = registry.histogram("lock.hold_time", (1, 5, 10))
    for value in (0.5, 3.0, 12.0):
        hist.observe(value)
    return registry


class TestSnapshot:
    def test_identical_registries_snapshot_equal(self):
        assert populated_registry().snapshot() == populated_registry().snapshot()

    def test_snapshot_is_decoupled_from_live_instruments(self):
        registry = populated_registry()
        snapshot = registry.snapshot()
        registry.counter("kernel.commits").inc()
        assert snapshot.counter("kernel.commits") == 4

    def test_lookup_defaults(self):
        snapshot = Snapshot()
        assert snapshot.counter("missing") == 0
        assert snapshot.counter("missing", default=-1) == -1
        assert snapshot.gauge("missing") == 0.0
        assert snapshot.gauge_hwm("missing") == 0.0
        assert snapshot.histogram("missing") is None

    def test_to_dict_round_trip(self):
        snapshot = populated_registry().snapshot()
        assert Snapshot.from_dict(snapshot.to_dict()) == snapshot

    def test_to_dict_is_json_serializable(self):
        json.dumps(populated_registry().snapshot().to_dict())

    def test_merged_sums_counters_and_histograms(self):
        a = populated_registry().snapshot()
        b = populated_registry().snapshot()
        merged = a.merged(b)
        assert merged.counter("kernel.commits") == 8
        assert merged.counter("lock.grants") == 22
        hist = merged.histogram("lock.hold_time")
        assert hist.count == 6
        assert hist.counts == (2, 2, 0, 2)

    def test_merged_gauges_take_other_value_and_max_hwm(self):
        a = populated_registry().snapshot()
        registry = populated_registry()
        registry.gauge("lock.held").set(9)
        registry.gauge("lock.held").set(1)
        b = registry.snapshot()
        merged = a.merged(b)
        assert merged.gauge("lock.held") == 1
        assert merged.gauge_hwm("lock.held") == 9

    def test_merged_rejects_mismatched_histogram_bounds(self):
        a = HistogramSnapshot(bounds=(1.0,), counts=(0, 0), sum=0.0, count=0)
        b = HistogramSnapshot(bounds=(2.0,), counts=(0, 0), sum=0.0, count=0)
        with pytest.raises(ValueError):
            a.merged(b)


class TestJsonl:
    def test_round_trip(self):
        snapshot = populated_registry().snapshot()
        buffer = io.StringIO()
        lines = snapshot.write_jsonl(buffer)
        assert lines == buffer.getvalue().count("\n")
        assert Snapshot.read_jsonl(buffer.getvalue().splitlines()) == snapshot

    def test_one_valid_json_object_per_line(self):
        buffer = io.StringIO()
        populated_registry().snapshot().write_jsonl(buffer)
        for line in buffer.getvalue().splitlines():
            record = json.loads(line)
            assert record["type"] in ("counter", "gauge", "histogram")
            assert "name" in record

    def test_blank_lines_ignored(self):
        snapshot = populated_registry().snapshot()
        buffer = io.StringIO()
        snapshot.write_jsonl(buffer)
        noisy = "\n\n" + buffer.getvalue() + "\n   \n"
        assert Snapshot.read_jsonl(noisy.splitlines()) == snapshot

    def test_unknown_record_type_rejected(self):
        with pytest.raises(ValueError):
            Snapshot.read_jsonl(['{"type": "sparkline", "name": "x"}'])


class TestConflictBreakdown:
    def test_rows_cover_all_cases_with_shares(self):
        registry = MetricsRegistry()
        registry.counter(CASE1_RELIEF).inc(1)
        registry.counter(CONFLICT_CASES[0]).inc(3)
        rows = conflict_breakdown(registry.snapshot())
        assert [row["counter"] for row in rows] == list(CONFLICT_CASES)
        assert sum(row["count"] for row in rows) == 4
        by_counter = {row["counter"]: row for row in rows}
        assert by_counter[CASE1_RELIEF]["count"] == 1


class TestSchedulerReadyGauge:
    """Regression: ``sched.ready_queue`` was only set when a task was
    stepped, so it never returned to 0 after the last task finished and
    drifted on ready/block transitions that happened between steps."""

    def _run_kernel(self, policy="fifo", seed=None):
        from repro.core.kernel import TransactionManager
        from repro.orderentry.schema import build_order_entry_database
        from repro.orderentry.transactions import make_t1, make_t2
        from repro.runtime.scheduler import Scheduler

        built = build_order_entry_database(n_items=2, orders_per_item=2)
        kernel = TransactionManager(
            built.db, scheduler=Scheduler(policy=policy, seed=seed)
        )
        kernel.spawn("T1", make_t1(built.item(0), 1, built.item(1), 2))
        kernel.spawn("T2", make_t2(built.item(0), 1, built.item(1), 2))
        kernel.run()
        return kernel

    def test_final_snapshot_reads_zero(self):
        kernel = self._run_kernel()
        snapshot = kernel.obs.snapshot()
        assert snapshot.gauge("sched.ready_queue") == 0

    def test_final_snapshot_reads_zero_under_random_policy(self):
        for seed in range(3):
            kernel = self._run_kernel(policy="random", seed=seed)
            assert kernel.obs.snapshot().gauge("sched.ready_queue") == 0

    def test_hwm_still_counts_concurrent_readiness(self):
        kernel = self._run_kernel()
        snapshot = kernel.obs.snapshot()
        # Two spawned tasks were ready together at least once.
        assert snapshot.gauge_hwm("sched.ready_queue") >= 2

    def test_gauge_tracks_ready_transitions(self):
        from repro.runtime.scheduler import Scheduler

        registry = MetricsRegistry()
        scheduler = Scheduler()
        scheduler.bind_metrics(registry)
        gate = scheduler.create_signal("gate")

        async def waiter():
            await gate

        async def firer():
            gate.fire()

        scheduler.spawn("W", waiter())
        scheduler.spawn("F", firer())
        assert registry.gauge("sched.ready_queue").value == 2
        scheduler.run()
        assert registry.gauge("sched.ready_queue").value == 0

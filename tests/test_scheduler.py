"""Unit tests for the deterministic cooperative scheduler."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeEngineError
from repro.runtime.scheduler import Pause, Scheduler, Task


class TestBasicExecution:
    def test_single_task_runs_to_completion(self):
        sched = Scheduler()

        async def work():
            return 42

        task = sched.spawn("t", work())
        sched.run()
        assert task.state == Task.DONE
        assert task.result == 42

    def test_fifo_interleaving_at_pauses(self):
        sched = Scheduler()
        order: list[str] = []

        def make(name: str):
            async def body():
                for i in range(3):
                    order.append(f"{name}{i}")
                    await Pause()
            return body

        sched.spawn("a", make("a")())
        sched.spawn("b", make("b")())
        sched.run()
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_random_policy_is_seed_deterministic(self):
        def run(seed: int) -> list[str]:
            sched = Scheduler(policy="random", seed=seed)
            order: list[str] = []

            def make(name: str):
                async def body():
                    for i in range(3):
                        order.append(f"{name}{i}")
                        await Pause()
                return body

            for name in ("a", "b", "c"):
                sched.spawn(name, make(name)())
            sched.run()
            return order

        assert run(7) == run(7)
        runs = {tuple(run(s)) for s in range(10)}
        assert len(runs) > 1  # different seeds explore different orders

    def test_scripted_policy(self):
        sched = Scheduler(policy="scripted", script=["b", "b", "a"])
        order: list[str] = []

        def make(name: str):
            async def body():
                order.append(name + "1")
                await Pause()
                order.append(name + "2")
            return body

        sched.spawn("a", make("a")())
        sched.spawn("b", make("b")())
        sched.run()
        assert order[:3] == ["b1", "b2", "a1"]

    def test_scripted_requires_script(self):
        with pytest.raises(ValueError):
            Scheduler(policy="scripted")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            Scheduler(policy="bogus")

    def test_duplicate_task_name(self):
        sched = Scheduler()

        async def nop():
            return None

        sched.spawn("t", nop())
        duplicate = nop()
        with pytest.raises(RuntimeEngineError, match="already in use"):
            sched.spawn("t", duplicate)
        duplicate.close()
        sched.run()


class TestSignals:
    def test_await_fired_signal_returns_immediately(self):
        sched = Scheduler()
        sig = sched.create_signal("s")
        sig.fire("v")

        async def body():
            return await sig

        task = sched.spawn("t", body())
        sched.run()
        assert task.result == "v"

    def test_signal_wakes_waiter(self):
        sched = Scheduler()
        sig = sched.create_signal("s")
        log: list[str] = []

        async def waiter():
            log.append("wait")
            value = await sig
            log.append(f"woke:{value}")

        async def firer():
            await Pause()
            log.append("fire")
            sig.fire("x")

        sched.spawn("w", waiter())
        sched.spawn("f", firer())
        sched.run()
        assert log == ["wait", "fire", "woke:x"]

    def test_signal_fire_is_idempotent(self):
        sched = Scheduler()
        sig = sched.create_signal()
        sig.fire(1)
        sig.fire(2)
        assert sig.value == 1

    def test_stall_without_hook_raises(self):
        sched = Scheduler()
        sig = sched.create_signal()

        async def stuck():
            await sig

        sched.spawn("t", stuck())
        with pytest.raises(RuntimeEngineError, match="all tasks blocked"):
            sched.run()

    def test_stall_hook_can_unblock(self):
        sched = Scheduler()
        sig = sched.create_signal()

        async def stuck():
            return await sig

        task = sched.spawn("t", stuck())

        def unstick(blocked):
            sig.fire("rescued")
            return True

        sched.on_stall = unstick
        sched.run()
        assert task.result == "rescued"


class TestInterrupt:
    def test_interrupt_blocked_task(self):
        sched = Scheduler()
        sig = sched.create_signal()

        async def stuck():
            try:
                await sig
            except KeyboardInterrupt:
                return "interrupted"

        task = sched.spawn("t", stuck())

        def hook(blocked):
            sched.interrupt(task, KeyboardInterrupt())
            return True

        sched.on_stall = hook
        sched.run()
        assert task.result == "interrupted"

    def test_uncaught_task_exception_propagates(self):
        sched = Scheduler()

        async def boom():
            raise ValueError("boom")

        sched.spawn("t", boom())
        with pytest.raises(ValueError, match="boom"):
            sched.run()


class TestVirtualClock:
    def test_costs_advance_clock(self):
        sched = Scheduler()

        async def body():
            await Pause(5.0)
            await Pause(2.5)

        sched.spawn("t", body())
        sched.run()
        assert sched.clock == pytest.approx(7.5)

    def test_timed_tasks_resume_in_time_order(self):
        sched = Scheduler()
        order: list[str] = []

        def make(name: str, cost: float):
            async def body():
                await Pause(cost)
                order.append(name)
            return body

        sched.spawn("slow", make("slow", 10.0)())
        sched.spawn("fast", make("fast", 1.0)())
        sched.run()
        assert order == ["fast", "slow"]

    def test_zero_cost_does_not_advance_clock(self):
        sched = Scheduler()

        async def body():
            await Pause()

        sched.spawn("t", body())
        sched.run()
        assert sched.clock == 0.0

"""Tests for the real-concurrency runtime: striped lock table, threaded
kernel, deadlock policies under wall-clock time, and thread-safety of
the conflict-test decision caches.

Threaded runs are nondeterministic by design, so the assertions are
outcome invariants — final state, serializability, a clean lock table,
``check_invariants`` — never specific interleavings.  The heavyweight
stress sweep is marked ``slow`` (run by the nightly workflow).
"""

from __future__ import annotations

import pytest

from repro.core.protocol import SemanticLockingProtocol
from repro.core.serializability import is_semantically_serializable
from repro.objects.database import Database
from repro.objects.encapsulated import TypeSpec
from repro.obs.registry import MetricsRegistry
from repro.orderentry.schema import PAID, SHIPPED, build_order_entry_database
from repro.orderentry.transactions import make_t1, make_t2
from repro.orderentry.workload import OrderEntryWorkload, WorkloadConfig
from repro.runtime.threaded import (
    ConcurrentLockTable,
    ThreadedKernel,
    run_threaded_transactions,
)


def make_counter_db(n_counters: int = 1):
    """A database of encapsulated counters whose Adds commute."""
    spec = TypeSpec("StressCounter")

    @spec.method(inverse=lambda result, args: ("Add", (-args[0],)))
    async def Add(ctx, counter, amount):
        atom = counter.impl_component("value")
        await ctx.put(atom, await ctx.get(atom) + amount)
        return None

    spec.matrix.allow("Add", "Add")
    db = Database()
    counters = []
    for i in range(n_counters):
        counter = db.new_encapsulated(spec, f"c{i}")
        db.attach_child(counter)
        impl = db.new_tuple(f"impl{i}")
        impl.add_component("value", db.new_atom("value", 0))
        counter.set_implementation(impl)
        counters.append(counter)
    return db, counters


class TestConcurrentLockTable:
    def test_stripes_get_disjoint_id_residues(self):
        table = ConcurrentLockTable(n_stripes=4)
        offsets = [stripe.table._next_lock_id for stripe in table._stripes]
        assert offsets == [0, 1, 2, 3]
        assert all(s.table._id_stride == 4 for s in table._stripes)

    def test_rejects_bad_stripe_count(self):
        with pytest.raises(ValueError):
            ConcurrentLockTable(n_stripes=0)

    def test_empty_table_invariants(self):
        table = ConcurrentLockTable(n_stripes=3)
        table.check_invariants()
        assert table.lock_count == 0
        assert table.pending_count == 0

    def test_stripe_index_is_stable(self):
        table = ConcurrentLockTable(n_stripes=5)
        db = Database()
        atom = db.new_atom("x", 0)
        first = table.stripe_index_of(atom.oid)
        assert all(table.stripe_index_of(atom.oid) == first for __ in range(10))
        assert 0 <= first < 5

    def test_lock_ids_unique_across_stripes(self):
        # Drive a real workload and check global uniqueness of the ids
        # handed out by different stripes (the invariant the residue
        # classes exist for).
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        kernel = ThreadedKernel(built.db, n_threads=4, n_stripes=4)
        kernel.spawn("T1", make_t1(built.item(0), 1, built.item(1), 2))
        kernel.spawn("T2", make_t2(built.item(0), 1, built.item(1), 2))
        kernel.run()
        kernel.locks.check_invariants()  # includes id-uniqueness checks
        assert kernel.locks.total_grants > 0


class TestThreadedKernel:
    def test_single_transaction(self):
        db = Database()
        atom = db.new_atom("x", 1)
        db.attach_child(atom)
        kernel = ThreadedKernel(db, n_threads=2)

        async def program(tx):
            await tx.put(atom, 2)
            return await tx.get(atom)

        kernel.spawn("T", program)
        kernel.run()
        assert kernel.handles["T"].committed
        assert kernel.handles["T"].result == 2

    def test_ship_and_pay(self):
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        kernel = ThreadedKernel(built.db, n_threads=4)
        kernel.spawn("T1", make_t1(built.item(0), 1, built.item(1), 2))
        kernel.spawn("T2", make_t2(built.item(0), 1, built.item(1), 2))
        kernel.run()
        assert kernel.handles["T1"].committed
        assert kernel.handles["T2"].committed
        assert built.status_atom(0, 0).raw_get().events == frozenset({SHIPPED, PAID})
        assert kernel.locks.lock_count == 0
        kernel.locks.check_invariants()
        assert is_semantically_serializable(kernel.history(), db=built.db).serializable

    def test_thread_and_stripe_metrics(self):
        db, (counter,) = make_counter_db()
        kernel = ThreadedKernel(db, n_threads=2, n_stripes=4)

        async def program(tx):
            await tx.call(counter, "Add", 1)

        kernel.spawn("A", program)
        kernel.spawn("B", program)
        kernel.run()
        snap = kernel.obs.snapshot()
        assert snap.counters["thread.steps"] > 0
        assert snap.counters["thread.spawned"] == 2
        assert snap.counters["stripe.ops"] > 0
        assert snap.counters["lock.grants"] > 0
        assert snap.gauges["stripe.count"]["value"] == 4
        assert snap.gauges["lock.held"]["value"] == 0  # all released

    def test_rejects_unsafe_registry(self):
        db = Database()
        with pytest.raises(ValueError):
            ThreadedKernel(db, obs=MetricsRegistry())  # not thread-safe

    def test_commuting_adds_no_lost_updates(self):
        db, (counter,) = make_counter_db()
        n = 8

        def make(amount):
            async def program(tx):
                await tx.call(counter, "Add", amount)

            return program

        kernel = run_threaded_transactions(
            db, {f"T{i}": make(i) for i in range(1, n + 1)}, n_threads=4
        )
        committed = sum(1 for h in kernel.handles.values() if h.committed)
        assert committed == n
        assert counter.impl_component("value").raw_get() == n * (n + 1) // 2


class TestDeadlockPoliciesWallClock:
    @staticmethod
    def _cycle_programs(x, y):
        async def ab(tx):
            await tx.put(x, "A")
            for __ in range(3):
                await tx.pause()
            await tx.put(y, "A")

        async def ba(tx):
            await tx.put(y, "B")
            for __ in range(3):
                await tx.pause()
            await tx.put(x, "B")

        return ab, ba

    @pytest.mark.parametrize("policy", ["detect", "wound-wait", "wait-die", "timeout"])
    def test_cycle_is_broken(self, policy):
        db = Database()
        x = db.new_atom("x", 0)
        y = db.new_atom("y", 0)
        db.attach_child(x)
        db.attach_child(y)
        ab, ba = self._cycle_programs(x, y)
        kernel = ThreadedKernel(
            db,
            n_threads=2,
            stall_timeout=15.0,
            deadlock_policy=policy,
            lock_timeout=0.2 if policy == "timeout" else None,
        )
        kernel.spawn("A", ab)
        kernel.spawn("B", ba)
        kernel.run()
        outcomes = {n: (h.committed, h.aborted) for n, h in kernel.handles.items()}
        assert all(c or a for c, a in outcomes.values()), outcomes
        assert any(c for c, __ in outcomes.values()), outcomes
        assert kernel.locks.lock_count == 0
        kernel.locks.check_invariants()

    def test_timeout_uses_wall_clock_default(self):
        db = Database()
        kernel = ThreadedKernel(db, deadlock_policy="timeout")
        assert kernel.kernel.lock_timeout == ThreadedKernel.DEFAULT_WALL_LOCK_TIMEOUT


class TestDecisionCachesUnderThreads:
    def test_kernel_arms_protocol_caches(self):
        db = Database()
        protocol = SemanticLockingProtocol()  # caching=True default
        ThreadedKernel(db, protocol=protocol)
        assert protocol.memo is not None and protocol.memo._lock is not None
        assert (
            protocol.relief_cache is not None
            and protocol.relief_cache._lock is not None
        )

    def test_no_torn_memo_reads_under_concurrent_conflict_tests(self):
        # Regression: the commutativity memo and relief cache are hit by
        # concurrent conflict tests from every worker; a torn read would
        # surface as a wrong verdict (lost update / false block).  Hammer
        # one hot counter so every conflict test races on the same memo
        # cells, then check the arithmetic and the history.
        db, (counter,) = make_counter_db()
        protocol = SemanticLockingProtocol(caching=True)
        n, bumps = 10, 3

        def make():
            async def program(tx):
                for __ in range(bumps):
                    await tx.call(counter, "Add", 1)

            return program

        kernel = run_threaded_transactions(
            db,
            {f"T{i}": make() for i in range(n)},
            protocol=protocol,
            n_threads=4,
        )
        committed = sum(1 for h in kernel.handles.values() if h.committed)
        assert committed == n
        assert counter.impl_component("value").raw_get() == n * bumps
        assert is_semantically_serializable(kernel.history(), db=db).serializable
        kernel.locks.check_invariants()


@pytest.mark.slow
class TestThreadedStress:
    SEEDS = range(8)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_order_entry_stress(self, seed):
        workload = OrderEntryWorkload(
            WorkloadConfig(n_items=2, orders_per_item=2, seed=seed)
        )
        programs = dict(workload.take(8))
        kernel = run_threaded_transactions(
            workload.db, programs, n_threads=6, n_stripes=4
        )
        kernel.locks.check_invariants()
        assert kernel.locks.lock_count == 0
        finished = sum(
            1 for h in kernel.handles.values() if h.committed or h.aborted
        )
        assert finished == len(programs)
        assert is_semantically_serializable(
            kernel.history(), db=workload.db
        ).serializable

    def test_counter_swarm(self):
        db, counters = make_counter_db(n_counters=3)
        n = 24

        def make(i):
            async def program(tx):
                await tx.call(counters[i % 3], "Add", 1)
                await tx.call(counters[(i + 1) % 3], "Add", 1)

            return program

        kernel = run_threaded_transactions(
            db, {f"T{i}": make(i) for i in range(n)}, n_threads=8
        )
        kernel.locks.check_invariants()
        committed = sum(1 for h in kernel.handles.values() if h.committed)
        total = sum(c.impl_component("value").raw_get() for c in counters)
        assert total == committed * 2

"""Tests for EventMultiset and exact ChangeStatus compensation."""

from __future__ import annotations

from repro.core.serializability import is_semantically_serializable
from repro.orderentry.schema import (
    PAID,
    SHIPPED,
    EventMultiset,
    build_order_entry_database,
    render_status,
)

from tests.helpers import run_programs


class TestEventMultiset:
    def test_empty(self):
        status = EventMultiset()
        assert PAID not in status
        assert status.events == frozenset()
        assert list(status) == []
        assert repr(status) == "status<new>"

    def test_add_and_contains(self):
        status = EventMultiset().add(PAID)
        assert PAID in status
        assert SHIPPED not in status
        assert status.count(PAID) == 1

    def test_counts_accumulate(self):
        status = EventMultiset().add(PAID).add(PAID)
        assert status.count(PAID) == 2
        assert status.events == frozenset({PAID})  # observably just "paid"

    def test_remove_decrements_not_erases(self):
        status = EventMultiset().add(PAID).add(PAID).remove(PAID)
        assert PAID in status  # one occurrence survives
        assert status.count(PAID) == 1

    def test_remove_to_zero(self):
        status = EventMultiset().add(PAID).remove(PAID)
        assert PAID not in status
        assert status == EventMultiset()

    def test_remove_at_zero_is_noop(self):
        assert EventMultiset().remove(PAID) == EventMultiset()

    def test_of_constructor(self):
        status = EventMultiset.of(PAID, SHIPPED, PAID)
        assert status.count(PAID) == 2
        assert status.count(SHIPPED) == 1

    def test_hashable_and_order_insensitive(self):
        a = EventMultiset.of(PAID, SHIPPED)
        b = EventMultiset.of(SHIPPED, PAID)
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_sorted_events(self):
        assert list(EventMultiset.of(SHIPPED, PAID, PAID)) == [PAID, SHIPPED]

    def test_repr_with_counts(self):
        assert repr(EventMultiset.of(PAID, PAID)) == "status<paidx2>"

    def test_render_status(self):
        assert render_status(EventMultiset()) == "new"
        assert render_status(EventMultiset.of(SHIPPED)) == "shipped"
        assert render_status(EventMultiset.of(SHIPPED, PAID)) == "paid&shipped"
        assert render_status(frozenset({PAID})) == "paid"  # legacy sets too


class TestExactCompensation:
    def test_duplicate_pay_compensation_preserves_survivor(self):
        """The scenario that motivates multiplicities: two transactions
        pay the *same* order; one aborts.  Its compensation must not
        erase the survivor's 'paid' event."""
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        item = built.item(0)

        async def pay_and_commit(tx):
            return await tx.call(item, "PayOrder", 1)

        async def pay_and_abort(tx):
            await tx.call(item, "PayOrder", 1)
            for __ in range(12):
                await tx.pause()
            tx.abort("changed my mind")

        kernel = run_programs(
            built.db, {"KEEP": pay_and_commit, "DROP": pay_and_abort}
        )
        assert kernel.handles["KEEP"].committed
        assert kernel.handles["DROP"].aborted
        status = built.status_atom(0, 0).raw_get()
        assert PAID in status, "the committed payment must survive"
        assert status.count(PAID) == 1

    def test_both_abort_leaves_unpaid(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        item = built.item(0)

        def payer(pauses):
            async def program(tx):
                await tx.call(item, "PayOrder", 1)
                for __ in range(pauses):
                    await tx.pause()
                tx.abort("nope")
            return program

        kernel = run_programs(built.db, {"A": payer(6), "B": payer(10)})
        assert kernel.metrics.aborts == 2
        assert PAID not in built.status_atom(0, 0).raw_get()

    def test_duplicate_pay_histories_serializable(self):
        for seed in range(6):
            built = build_order_entry_database(n_items=1, orders_per_item=1)
            item = built.item(0)

            def payer():
                async def program(tx):
                    return await tx.call(item, "PayOrder", 1)
                return program

            kernel = run_programs(
                built.db, {"P1": payer(), "P2": payer()}, policy="random", seed=seed
            )
            result = is_semantically_serializable(kernel.history(), db=built.db)
            assert result.serializable, seed
            committed = sum(1 for h in kernel.handles.values() if h.committed)
            assert built.status_atom(0, 0).raw_get().count(PAID) == committed

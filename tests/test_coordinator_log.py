"""Unit tests for the coordinator log's v2 format: seqs, acks, compaction.

No cluster boot here — the log is a plain file-backed object, so every
durability claim is checked by reloading the file (or a crash-site copy
of it) into a fresh :class:`CoordinatorLog`.  The load-bearing claims:

* per-shard decision seqs are monotonic and survive reload/compaction,
  so a restarted coordinator can never reuse a seq a shard already
  acked;
* a gtid becomes compactable only when **every** contacted shard acked
  it, and compaction never drops anything else;
* compaction is atomic — a crash at either injectable site leaves the
  complete old file or the complete new file, never a mix;
* the participant's :class:`AckBook` high-water mark is contiguous (a
  skipped seq is never covered) and rebuilt from durable WAL records.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.participant import AckBook
from repro.cluster.records import ClusterAckRecord
from repro.cluster.router import CoordinatorLog
from repro.recovery.wal import WriteAheadLog


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "coordinator.log")


class TestDecisionSeqs:
    def test_seqs_are_per_shard_and_monotonic(self, log_path):
        log = CoordinatorLog(log_path)
        assert log.decide("g-a", "commit", [0, 1]) == {0: 1, 1: 1}
        assert log.decide("g-b", "commit", [1, 2]) == {1: 2, 2: 1}
        assert log.decide("g-c", "abort", [0]) == {0: 2}
        log.close()

    def test_decide_is_idempotent_and_returns_the_stored_seqs(self, log_path):
        log = CoordinatorLog(log_path)
        first = log.decide("g-a", "commit", [0, 1])
        again = log.decide("g-a", "abort", [0, 1, 2])  # ignored: already decided
        assert again == first
        assert log.status("g-a") == "commit"
        log.close()

    def test_seq_counters_survive_reload(self, log_path):
        log = CoordinatorLog(log_path)
        log.decide("g-a", "commit", [0, 1])
        log.close()
        reloaded = CoordinatorLog(log_path)
        assert reloaded.decide("g-b", "commit", [0]) == {0: 2}
        reloaded.close()

    def test_seq_counters_survive_compaction_and_reload(self, log_path):
        # The dangerous path: the decision that *held* the counter high
        # is truncated away; the meta line must carry the counters.
        log = CoordinatorLog(log_path)
        log.decide("g-a", "commit", [0, 1])
        log.ack("g-a", 0)
        log.ack("g-a", 1)
        log.compact()
        log.close()
        reloaded = CoordinatorLog(log_path)
        assert reloaded.decide("g-b", "commit", [0, 1]) == {0: 2, 1: 2}
        reloaded.close()


class TestAcksAndTruncation:
    def test_fully_acked_means_every_contacted_shard(self, log_path):
        log = CoordinatorLog(log_path)
        log.decide("g-a", "commit", [0, 1])
        assert log.ack("g-a", 0) is False
        assert log.compactable == 0
        assert log.ack("g-a", 1) is True
        assert log.compactable == 1
        log.close()

    def test_duplicate_and_unknown_acks_are_inert(self, log_path):
        log = CoordinatorLog(log_path)
        log.decide("g-a", "commit", [0])
        assert log.ack("g-a", 0) is True
        assert log.ack("g-a", 0) is False
        assert log.ack("g-a", 7) is False
        assert log.ack("nonsense", 0) is False
        assert log.compactable == 1
        log.close()

    def test_acks_survive_reload(self, log_path):
        log = CoordinatorLog(log_path)
        log.decide("g-a", "commit", [0, 1])
        log.ack("g-a", 0)
        log.close()
        reloaded = CoordinatorLog(log_path)
        assert reloaded.compactable == 0  # shard 1 still owes an ack
        assert reloaded.ack("g-a", 1) is True
        assert reloaded.compactable == 1
        reloaded.close()

    def test_compaction_keeps_unacked_drops_acked(self, log_path):
        log = CoordinatorLog(log_path)
        log.decide("g-done", "commit", [0, 1])
        log.ack("g-done", 0)
        log.ack("g-done", 1)
        log.decide("g-open", "commit", [0, 1])
        log.ack("g-open", 0)  # shard 1 never acked: must survive
        kept, dropped = log.compact()
        assert (kept, dropped) == (1, 1)
        assert log.file_entries() == 1
        # In-process decisions stay complete: the torture audit and
        # status queries still see the truncated gtid.
        assert log.status("g-done") == "commit"
        log.close()
        # A reloaded coordinator has forgotten g-done — presumed abort
        # answers for it, which is safe *because* both shards hold the
        # commit decision durably and can never ask again.
        reloaded = CoordinatorLog(log_path)
        assert reloaded.status("g-open") == "commit"
        assert reloaded.status("g-done") == "abort"
        # The partial ack state of the survivor was preserved.
        assert reloaded.ack("g-open", 0) is False  # already acked pre-compact
        assert reloaded.ack("g-open", 1) is True
        reloaded.close()

    def test_ack_upto_covers_hwm_extras_and_named_gtids(self, log_path):
        log = CoordinatorLog(log_path)
        log.decide("g-1", "commit", [0])  # seq 1
        log.decide("g-2", "commit", [0])  # seq 2
        log.decide("g-3", "commit", [0])  # seq 3
        log.decide("g-4", "commit", [0])  # seq 4
        log.decide("g-5", "abort", [0])  # seq 5
        # hwm 2 covers seqs 1-2; extra covers 4; the named gtid covers
        # g-5 (a decision learned via in-doubt resolution has no seq on
        # the shard, so boot announces it by name).  Seq 3 stays open.
        acked, full = log.ack_upto(0, hwm=2, extra=[4], gtids=["g-5"])
        assert (acked, full) == (4, 4)
        assert log.compactable == 4
        kept, dropped = log.compact()
        assert (kept, dropped) == (1, 4)
        assert log.file_entries() == 1
        log.close()
        reloaded = CoordinatorLog(log_path)
        assert reloaded.status("g-3") == "commit"
        reloaded.close()

    def test_v1_lines_load_as_immediately_compactable(self, log_path):
        # PR 9 logs carried no shard map; nothing can ever ack them, so
        # they must not pin the file forever.
        with open(log_path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"gtid": "g-old", "decision": "commit"}) + "\n")
        log = CoordinatorLog(log_path)
        assert log.status("g-old") == "commit"
        assert log.compactable == 1
        kept, dropped = log.compact()
        assert (kept, dropped) == (0, 1)
        log.close()


class TestCompactionCrashAtomicity:
    """Crash mid-compact recovers either the old or the new file, never a mix."""

    def setup_log(self, path) -> CoordinatorLog:
        log = CoordinatorLog(path)
        log.decide("g-acked", "commit", [0])
        log.ack("g-acked", 0)
        log.decide("g-open", "commit", [0, 1])
        log.ack("g-open", 1)
        return log

    def test_crash_before_rename_keeps_the_old_file(self, tmp_path):
        path = str(tmp_path / "coordinator.log")
        log = self.setup_log(path)
        before = open(path, encoding="utf-8").read()

        class Boom(RuntimeError):
            pass

        def crash(site: str) -> None:
            if site == "compact-temp-written":
                raise Boom(site)

        with pytest.raises(Boom):
            log.compact(crash=crash)
        log.close()
        # The live file is byte-identical to the pre-compaction one; the
        # temp file is litter a later compaction overwrites.
        assert open(path, encoding="utf-8").read() == before
        reloaded = CoordinatorLog(path)
        assert reloaded.decisions() == {"g-acked": "commit", "g-open": "commit"}
        assert reloaded.compactable == 1  # g-acked is still compactable
        assert reloaded.decide("g-probe", "abort", [0])[0] == 3
        reloaded.close()

    def test_crash_after_rename_keeps_the_new_file(self, tmp_path):
        path = str(tmp_path / "coordinator.log")
        log = self.setup_log(path)

        class Boom(RuntimeError):
            pass

        def crash(site: str) -> None:
            if site == "compact-renamed":
                raise Boom(site)

        with pytest.raises(Boom):
            log.compact(crash=crash)
        log.close()
        reloaded = CoordinatorLog(path)
        # The compacted file won: g-acked is forgotten (presumed abort),
        # g-open survives with its partial ack, and the seq counters
        # carried over through the meta line.
        assert reloaded.decisions() == {"g-open": "commit"}
        assert reloaded.status("g-acked") == "abort"
        assert reloaded.ack("g-open", 1) is False
        assert reloaded.ack("g-open", 0) is True
        assert reloaded.decide("g-probe", "abort", [0])[0] == 3
        reloaded.close()

    def test_every_crash_site_yields_old_xor_new(self, tmp_path):
        # Generic sweep: whatever site fires, a reload sees exactly one
        # of the two well-formed states — never a torn hybrid.
        old_state = new_state = None
        for prep in ("old", "new"):
            path = str(tmp_path / f"{prep}.log")
            log = self.setup_log(path)
            if prep == "new":
                log.compact()
            log.close()
            reloaded = CoordinatorLog(path)
            state = {
                "decisions": reloaded.decisions(),
                "compactable": reloaded.compactable,
            }
            reloaded.close()
            if prep == "old":
                old_state = state
            else:
                new_state = state
        assert old_state != new_state

        class Boom(RuntimeError):
            pass

        for site in ("compact-temp-written", "compact-renamed"):
            path = str(tmp_path / f"crash-{site}.log")
            log = self.setup_log(path)

            def crash(at: str, stop: str = site) -> None:
                if at == stop:
                    raise Boom(at)

            with pytest.raises(Boom):
                log.compact(crash=crash)
            log.close()
            reloaded = CoordinatorLog(path)
            state = {
                "decisions": reloaded.decisions(),
                "compactable": reloaded.compactable,
            }
            reloaded.close()
            assert state in (old_state, new_state), site


class TestAckBook:
    def test_hwm_is_contiguous_not_max(self):
        book = AckBook()
        assert book.record(1) and book.hwm == 1
        # Seq 2 never arrives (say, its 2pc-commit send failed): 3 and 5
        # must NOT advance the hwm past the gap, or the coordinator
        # would forget a decision this shard never heard.
        assert book.record(3) and book.hwm == 1
        assert book.record(5) and book.hwm == 1
        assert book.extra == (3, 5)
        assert book.record(2) and book.hwm == 3
        assert book.extra == (5,)
        assert book.record(4) and book.hwm == 5
        assert book.extra == ()

    def test_duplicates_are_not_new(self):
        book = AckBook()
        assert book.record(1) is True
        assert book.record(1) is False
        book.record(3)
        assert book.record(3) is False

    def test_rebuilt_from_durable_wal_records(self, tmp_path):
        wal = WriteAheadLog()
        for seq, gtid in ((1, "g-a"), (2, "g-b"), (4, "g-d")):
            wal.append(
                ClusterAckRecord(
                    lsn=wal.next_lsn(),
                    txn=f"2pc-{gtid}",
                    gtid=gtid,
                    shard_seq=seq,
                )
            )
        book = AckBook.from_wal(wal)
        assert book.hwm == 2
        assert book.extra == (4,)

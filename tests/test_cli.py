"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "T2" in out
        assert "semantically serializable: True" in out
        assert "lock waits: 0" in out

    def test_matrices(self, capsys):
        assert main(["matrices"]) == 0
        out = capsys.readouterr().out
        assert "Item" in out and "Order" in out
        assert "ShipOrder" in out
        assert "lock modes of Order" in out

    def test_compare(self, capsys):
        assert main(["compare", "--transactions", "8", "--mpl", "2"]) == 0
        out = capsys.readouterr().out
        assert "semantic" in out and "page-2pl" in out
        assert "throughput" in out

    def test_check_semantic_ok(self, capsys):
        assert main(["check", "--transactions", "5", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "serializable: True" in out

    def test_check_detects_naive_violation(self, capsys):
        """Some seed exposes the naive protocol on a bypass-heavy mix."""
        failures = 0
        for seed in range(25):
            code = main(
                [
                    "check",
                    "--protocol",
                    "open-nested-naive",
                    "--transactions",
                    "6",
                    "--seed",
                    str(seed),
                ]
            )
            if code == 1:
                failures += 1
                break
        capsys.readouterr()
        assert failures >= 1

    def test_check_threaded_runtime(self, capsys):
        assert main(["check", "--runtime", "threaded", "--transactions", "4"]) == 0
        out = capsys.readouterr().out
        assert "threaded runtime" in out
        assert "serializable: True" in out

    def test_stats_from_jsonl_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        assert main(["stats", "--transactions", "6", "--jsonl", str(path)]) == 0
        capsys.readouterr()
        assert main(["stats", "--from-jsonl", str(path)]) == 0
        out = capsys.readouterr().out
        assert "conflict-test outcomes" in out
        assert "lock manager" in out

    def test_stats_from_jsonl_missing_file(self, tmp_path, capsys):
        path = tmp_path / "nope.jsonl"
        assert main(["stats", "--from-jsonl", str(path)]) == 1
        out = capsys.readouterr().out
        assert out.strip() == f"error: metrics file not found: {path}"

    def test_stats_from_jsonl_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["stats", "--from-jsonl", str(path)]) == 1
        out = capsys.readouterr().out
        assert out.strip() == f"error: metrics file is empty: {path}"

    def test_stats_from_jsonl_garbage_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text('{"type": "wibble", "name": "x"}\n')
        assert main(["stats", "--from-jsonl", str(path)]) == 1
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert "Traceback" not in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "matrices"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "Item" in result.stdout

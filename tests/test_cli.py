"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "T2" in out
        assert "semantically serializable: True" in out
        assert "lock waits: 0" in out

    def test_matrices(self, capsys):
        assert main(["matrices"]) == 0
        out = capsys.readouterr().out
        assert "Item" in out and "Order" in out
        assert "ShipOrder" in out
        assert "lock modes of Order" in out

    def test_compare(self, capsys):
        assert main(["compare", "--transactions", "8", "--mpl", "2"]) == 0
        out = capsys.readouterr().out
        assert "semantic" in out and "page-2pl" in out
        assert "throughput" in out

    def test_check_semantic_ok(self, capsys):
        assert main(["check", "--transactions", "5", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "serializable: True" in out

    def test_check_detects_naive_violation(self, capsys):
        """Some seed exposes the naive protocol on a bypass-heavy mix."""
        failures = 0
        for seed in range(25):
            code = main(
                [
                    "check",
                    "--protocol",
                    "open-nested-naive",
                    "--transactions",
                    "6",
                    "--seed",
                    str(seed),
                ]
            )
            if code == 1:
                failures += 1
                break
        capsys.readouterr()
        assert failures >= 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "matrices"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "Item" in result.stdout

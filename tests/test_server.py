"""In-process tests for the overload-robust transaction server.

Each test builds a small real server (real threads, real kernel) and
drives it through one robustness behaviour: plain commits, queue-full
and deadline-unmeetable shedding, deadline interrupts of in-flight
work, degraded read-only mode with hysteretic recovery, graceful drain
with straggler aborts, and fault-injected delays and worker crashes.
Every server is shut down and its drain report checked — lock hygiene
after chaos is the point of the exercise.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.orderentry.schema import build_order_entry_database
from repro.server import (
    AdmissionConfig,
    DegradeConfig,
    Request,
    TransactionServer,
)


def make_server(**kwargs) -> TransactionServer:
    kwargs.setdefault(
        "built", build_order_entry_database(n_items=2, orders_per_item=4)
    )
    kwargs.setdefault("n_threads", 2)
    return TransactionServer(**kwargs).start()


class TestBasicServing:
    def test_write_and_read_requests_commit(self):
        server = make_server()
        try:
            placed = server.submit(Request(op="place", item=0, customer_no=42))
            assert placed.ok, placed.to_dict()
            assert isinstance(placed.result, int)
            stock = server.submit(Request(op="stock-check", item=0))
            assert stock.ok and stock.result == 1000
            restock = server.submit(Request(op="restock", item=0, quantity=7))
            assert restock.ok and restock.result is None
            stock = server.submit(Request(op="stock-check", item=0))
            assert stock.ok and stock.result == 1007
        finally:
            report = server.shutdown()
        assert report.clean, report.to_dict()

    def test_unknown_op_fails_with_stable_code(self):
        server = make_server()
        try:
            response = server.submit(Request(op="frobnicate"))
            assert response.status == "failed"
            assert response.error["code"] == "unknown-operation"
        finally:
            assert server.shutdown().clean

    def test_unknown_item_fails_cleanly(self):
        server = make_server()
        try:
            response = server.submit(Request(op="place", item=99))
            assert response.status == "failed"
            assert response.error["code"] == "unknown-object"
        finally:
            assert server.shutdown().clean

    def test_stats_shape(self):
        server = make_server()
        try:
            server.submit(Request(op="stock-check", item=0))
            stats = server.stats()
            for key in ("requests", "ok", "shed", "inflight", "degraded",
                        "draining", "service_estimate"):
                assert key in stats
            assert stats["ok"] >= 1
        finally:
            assert server.shutdown().clean


class TestOverloadShedding:
    def test_queue_full_sheds_with_retry_after(self):
        server = make_server(
            time_scale=0.002,
            think_cost=25.0,  # ~50 ms service time
            admission=AdmissionConfig(max_inflight=1, queue_cap=1),
            default_deadline=5.0,
        )
        try:
            pendings = [
                server.submit_async(Request(op="place", item=0, request_id=f"r{i}"))
                for i in range(12)
            ]
            responses = [p.wait(10.0) for p in pendings]
            sheds = [r for r in responses if r is not None and r.shed]
            assert sheds, [r.to_dict() for r in responses if r]
            for shed in sheds:
                assert shed.retry_after is not None and shed.retry_after > 0
                assert shed.error["code"] == "request-shed"
                assert shed.error["reason_code"] in {
                    "queue-full", "deadline-unmeetable", "expired-in-queue",
                    "degraded-writes",
                }
            oks = [r for r in responses if r is not None and r.ok]
            assert oks  # admitted work still finishes
        finally:
            report = server.shutdown()
        assert report.clean, report.to_dict()

    def test_deadline_unmeetable_shed_at_admission(self):
        server = make_server(
            time_scale=0.002,
            think_cost=250.0,  # ~500 ms service time
            admission=AdmissionConfig(
                max_inflight=1, queue_cap=64, initial_service_estimate=0.5
            ),
        )
        try:
            # One long request occupies the only slot; the estimator then
            # predicts ~500 ms of wait, dooming a 50 ms deadline upfront.
            slow = server.submit_async(Request(op="place", item=0, deadline=5.0))
            time.sleep(0.05)
            response = server.submit(Request(op="place", item=1, deadline=0.05))
            assert response.shed, response.to_dict()
            assert response.error["reason_code"] == "deadline-unmeetable"
            assert response.retry_after > 0
            assert slow.wait(10.0).ok
        finally:
            report = server.shutdown()
        assert report.clean, report.to_dict()


class TestDeadlines:
    def test_slow_request_is_deadline_aborted(self):
        server = make_server(
            time_scale=0.002,
            think_cost=400.0,  # ~800 ms service time
            deadline_check=0.01,
        )
        try:
            response = server.submit(Request(op="place", item=0, deadline=0.1))
            assert response.status == "aborted", response.to_dict()
            assert response.error["code"] == "deadline-exceeded"
            # The server survives and still serves within-deadline work.
            follow_up = server.submit(
                Request(op="stock-check", item=0, deadline=5.0)
            )
            assert follow_up.ok
        finally:
            report = server.shutdown()
        assert report.clean, report.to_dict()

    def test_deadline_bounds_lock_waits(self):
        server = make_server()
        try:
            response = server.submit(Request(op="place", item=0, deadline=0.2))
            assert response.ok
            # The propagation seam is installed and clamps to the floor.
            assert server.tk.kernel.lock_timeout_fn is not None
        finally:
            assert server.shutdown().clean


class TestDegradedMode:
    def test_degraded_sheds_writes_serves_reads(self):
        server = make_server()
        try:
            server.degrade.force(True)
            server.admission.set_degraded(True)
            write = server.submit(Request(op="place", item=0))
            assert write.shed
            assert write.error["reason_code"] == "degraded-writes"
            assert write.degraded
            read = server.submit(Request(op="stock-check", item=0))
            assert read.ok
            server.degrade.force(False)
            server.admission.set_degraded(False)
            write = server.submit(Request(op="place", item=0))
            assert write.ok
        finally:
            assert server.shutdown().clean

    def test_sustained_overload_enters_and_exits_degraded(self):
        server = make_server(
            time_scale=0.002,
            think_cost=50.0,  # ~100 ms service time
            degrade=DegradeConfig(alpha=0.5, enter_threshold=0.5,
                                  exit_threshold=0.1, min_dwell=0.0),
            admission=AdmissionConfig(max_inflight=1, queue_cap=1),
            default_deadline=10.0,
        )
        try:
            # A write burst against one slot and a one-deep queue: the
            # overflow sheds queue-full, driving the EWMA over the enter
            # threshold.
            pendings = [
                server.submit_async(Request(op="place", item=0, request_id=f"ov{i}"))
                for i in range(8)
            ]
            assert server.degrade.degraded
            assert server.degrade.entered_count == 1
            # Read-only work keeps flowing while degraded, and each
            # admitted read decays the EWMA until hysteretic recovery.
            response = None
            for i in range(30):
                response = server.submit(
                    Request(op="stock-check", item=0, request_id=f"rec{i}",
                            deadline=10.0)
                )
                if not server.degrade.degraded:
                    break
            assert not server.degrade.degraded
            assert response is not None and response.ok
            assert server.degrade.exited_count == 1
            for p in pendings:
                assert p.wait(10.0) is not None
        finally:
            report = server.shutdown()
        assert report.clean, report.to_dict()


class TestDrain:
    def test_drain_finishes_inflight_and_sheds_queued(self):
        server = make_server(
            time_scale=0.002,
            think_cost=50.0,  # ~100 ms per request
            admission=AdmissionConfig(max_inflight=1, queue_cap=8),
            default_deadline=10.0,
        )
        pendings = [
            server.submit_async(Request(op="place", item=0, request_id=f"d{i}"))
            for i in range(4)
        ]
        time.sleep(0.02)  # let the first request enter the kernel
        report = server.shutdown(drain_deadline=5.0)
        assert report.clean, report.to_dict()
        responses = [p.wait(1.0) for p in pendings]
        assert all(r is not None for r in responses)
        statuses = {r.status for r in responses}
        assert "ok" in statuses  # in-flight work finished
        draining = [r for r in responses if r.shed]
        for shed in draining:
            assert shed.error["reason_code"] == "draining"
            assert shed.retry_after > 0

    def test_post_drain_submissions_are_shed(self):
        server = make_server()
        report = server.shutdown()
        assert report.clean
        response = server.submit(Request(op="place", item=0))
        assert response.shed
        assert response.error["reason_code"] == "draining"

    def test_drain_aborts_stragglers_past_deadline(self):
        server = make_server(
            time_scale=0.002,
            think_cost=1000.0,  # ~2 s service time, far past the drain budget
            default_deadline=30.0,
        )
        pending = server.submit_async(Request(op="place", item=0))
        time.sleep(0.05)
        report = server.shutdown(drain_deadline=0.1, grace=2.0)
        assert report.stragglers_aborted == 1, report.to_dict()
        assert report.clean, report.to_dict()
        response = pending.wait(1.0)
        assert response is not None and response.status == "aborted"

    def test_double_shutdown_is_safe(self):
        server = make_server()
        first = server.shutdown()
        second = server.shutdown()
        assert first.clean and second.clean


class TestFaultInjection:
    def test_injected_delay_stretches_but_commits(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="pre-acquire", action="delay", delay=50.0, max_fires=1),
        ))
        server = make_server(time_scale=0.002, faults=plan)
        try:
            response = server.submit(Request(op="place", item=0, deadline=5.0))
            assert response.ok, response.to_dict()
        finally:
            assert server.shutdown().clean

    def test_injected_crash_aborts_request_not_server(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="pre-acquire", action="crash", txn="req-0", max_fires=1),
        ))
        server = make_server(faults=plan)
        try:
            crashed = server.submit(Request(op="place", item=0))
            assert crashed.status == "aborted", crashed.to_dict()
            assert "injected worker crash" in crashed.error["message"]
            # The worker survived: the very next request commits.
            follow_up = server.submit(Request(op="place", item=0))
            assert follow_up.ok, follow_up.to_dict()
        finally:
            report = server.shutdown()
        assert report.clean, report.to_dict()

    def test_injected_crash_during_overload_keeps_queue_bounded(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="pre-acquire", action="crash", probability=0.3,
                      max_fires=0),
        ), seed=7)
        server = make_server(
            time_scale=0.001,
            think_cost=10.0,
            faults=plan,
            admission=AdmissionConfig(max_inflight=2, queue_cap=4),
        )
        try:
            pendings = [
                server.submit_async(Request(op="place", item=i % 2,
                                            request_id=f"f{i}"))
                for i in range(20)
            ]
            responses = [p.wait(10.0) for p in pendings]
            assert all(r is not None for r in responses)
            assert server.admission.depth() <= 4
        finally:
            report = server.shutdown()
        assert report.clean, report.to_dict()


class TestConcurrentClients:
    def test_many_threads_submitting_concurrently(self):
        server = make_server(n_threads=4)
        results = []
        lock = threading.Lock()

        def client(index: int) -> None:
            response = server.submit(
                Request(op="place" if index % 2 else "stock-check",
                        item=index % 2, request_id=f"c{index}", deadline=5.0)
            )
            with lock:
                results.append(response)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15.0)
        try:
            assert len(results) == 16
            assert all(r.ok or r.shed for r in results), [
                r.to_dict() for r in results if not (r.ok or r.shed)
            ]
            assert any(r.ok for r in results)
        finally:
            report = server.shutdown()
        assert report.clean, report.to_dict()


class TestLifecycle:
    def test_double_start_rejected(self):
        server = make_server()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            assert server.shutdown().clean

    def test_invalid_deadline_config_rejected(self):
        with pytest.raises(ValueError):
            TransactionServer(default_deadline=0.0)


class TestMultiRootRequests:
    """Multi-line place and multi-item total-payment — the request
    shapes the cluster router splits into cross-shard 2PC branches —
    must first work as plain single-server transactions."""

    def test_multi_line_place_opens_one_order_per_line(self):
        server = make_server()
        try:
            placed = server.submit(
                Request(op="place", customer_no=7, lines=((0, 3), (1, 2)))
            )
            assert placed.ok, placed.to_dict()
            assert isinstance(placed.result, list) and len(placed.result) == 2
            assert all(isinstance(no, int) for no in placed.result)
            # Each line's order exists on its own item: paying it works.
            for item, order_no in zip((0, 1), placed.result):
                paid = server.submit(
                    Request(op="pay", item=item, order_no=order_no)
                )
                assert paid.ok, paid.to_dict()
        finally:
            assert server.shutdown().clean

    def test_multi_item_total_payment_sums_the_singles(self):
        server = make_server()
        try:
            for item in (0, 1):
                placed = server.submit(Request(op="place", item=item, quantity=2))
                paid = server.submit(
                    Request(op="pay", item=item, order_no=placed.result)
                )
                assert paid.ok, paid.to_dict()
            singles = [
                server.submit(Request(op="total-payment", item=item)).result
                for item in (0, 1)
            ]
            combined = server.submit(Request(op="total-payment", items=(0, 1)))
            assert combined.ok, combined.to_dict()
            assert combined.result == sum(singles) > 0
        finally:
            assert server.shutdown().clean

    def test_bad_line_item_fails_whole_request_atomically(self):
        server = make_server()
        try:
            probe = server.submit(Request(op="place", item=0))
            placed = server.submit(
                Request(op="place", customer_no=7, lines=((0, 3), (99, 1)))
            )
            assert placed.status == "failed"
            assert placed.error["code"] == "unknown-object"
            # Nothing escaped the failed place: the order counter did not
            # advance, so the next single place gets the adjacent number.
            after = server.submit(Request(op="place", item=0))
            assert after.result == probe.result + 1
        finally:
            assert server.shutdown().clean

    def test_empty_lines_and_items_are_rejected(self):
        server = make_server()
        try:
            empty_place = server.submit(Request(op="place", lines=()))
            assert empty_place.status == "failed"
            assert empty_place.error["code"] == "unknown-object"
            empty_total = server.submit(Request(op="total-payment", items=()))
            assert empty_total.status == "failed"
            assert empty_total.error["code"] == "unknown-object"
        finally:
            assert server.shutdown().clean

    def test_request_roundtrips_lines_and_items_through_json(self):
        original = Request(op="place", customer_no=3, lines=((0, 1), (1, 2)))
        decoded = Request.from_dict(original.to_dict())
        assert decoded.lines == ((0, 1), (1, 2))
        original = Request(op="total-payment", items=(0, 1))
        decoded = Request.from_dict(original.to_dict())
        assert decoded.items == (0, 1)

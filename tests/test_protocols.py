"""Integration tests for the baseline protocols on the shared kernel."""

from __future__ import annotations

import pytest

from repro.core.protocol import SemanticLockingProtocol
from repro.objects.database import Database
from repro.orderentry.schema import SHIPPED, build_order_entry_database
from repro.orderentry.transactions import make_t1, make_t2
from repro.protocols.closed_nested import ClosedNestedProtocol
from repro.protocols.open_nested_naive import OpenNestedNaiveProtocol
from repro.protocols.two_phase_object import ObjectRW2PLProtocol
from repro.protocols.two_phase_page import PageLockingProtocol

from tests.helpers import run_programs


def ship_and_pay_same_orders(protocol):
    """T1 ships orders 1@i1, 2@i2 while T2 pays the same orders."""
    built = build_order_entry_database(n_items=2, orders_per_item=2)
    programs = {
        "T1": make_t1(built.item(0), 1, built.item(1), 2),
        "T2": make_t2(built.item(0), 1, built.item(1), 2),
    }
    kernel = run_programs(built.db, programs, protocol=protocol)
    return built, kernel


class TestSemanticVsBaselineConcurrency:
    def test_semantic_runs_ship_and_pay_without_top_level_waits(self):
        __, kernel = ship_and_pay_same_orders(SemanticLockingProtocol())
        assert kernel.handles["T1"].committed and kernel.handles["T2"].committed
        for event in kernel.trace.of_kind("block"):
            # any block is a leaf-level case-1/2 wait, i.e. on a
            # subtransaction node (node ids like "a-3"), never on a
            # top-level transaction name
            assert all(w not in ("T1", "T2") for w in event.detail["waits_for"])

    @pytest.mark.parametrize(
        "protocol_cls",
        [ObjectRW2PLProtocol, PageLockingProtocol, ClosedNestedProtocol],
    )
    def test_baselines_serialize_ship_and_pay(self, protocol_cls):
        """Conventional protocols block Ship vs Pay on the same order
        (pure write-write conflict to them) until top-level commit."""
        __, kernel = ship_and_pay_same_orders(protocol_cls())
        assert kernel.handles["T1"].committed
        assert kernel.handles["T2"].committed or kernel.handles["T2"].aborted
        blocked_on_txn = [
            e
            for e in kernel.trace.of_kind("block")
            if any(w in ("T1", "T2") for w in e.detail["waits_for"])
        ]
        assert blocked_on_txn, f"{protocol_cls.__name__} should have blocked"

    def test_results_identical_across_protocols(self):
        """All correct protocols produce the same final state here."""
        states = {}
        for protocol in (
            SemanticLockingProtocol(),
            ObjectRW2PLProtocol(),
            PageLockingProtocol(),
            ClosedNestedProtocol(),
            OpenNestedNaiveProtocol(),
        ):
            built, kernel = ship_and_pay_same_orders(protocol)
            if not (kernel.handles["T1"].committed and kernel.handles["T2"].committed):
                continue  # an aborted run may legitimately differ
            states[protocol.name] = (
                built.item(0).impl_component("QOH").raw_get(),
                built.status_atom(0, 0).raw_get(),
                built.status_atom(1, 1).raw_get(),
            )
        assert len(set(states.values())) == 1, states


class TestPageLocking:
    def test_page_locks_only(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)

        async def program(tx):
            await tx.call(built.item(0), "ShipOrder", 1)

        kernel = run_programs(built.db, {"T": program}, protocol=PageLockingProtocol())
        targets = {e.detail["target"] for e in kernel.trace.of_kind("grant")}
        assert targets, "no locks taken"
        assert all(t.startswith("Page#") for t in targets), targets

    def test_false_sharing_blocks_unrelated_objects(self):
        """Two atoms on the same page conflict under page locking even
        though they are logically unrelated."""
        db = Database(records_per_page=8)
        a = db.new_atom("a", 0)
        b = db.new_atom("b", 0)
        db.attach_child(a)
        db.attach_child(b)
        assert db.storage.co_located(a.oid, b.oid)

        async def wa(tx):
            await tx.put(a, 1)
            await tx.pause()
            await tx.pause()

        async def wb(tx):
            await tx.put(b, 1)

        kernel = run_programs(db, {"A": wa, "B": wb}, protocol=PageLockingProtocol())
        assert kernel.metrics.blocks >= 1  # false sharing

        # the semantic protocol does not conflate them
        db2 = Database(records_per_page=8)
        a2, b2 = db2.new_atom("a", 0), db2.new_atom("b", 0)
        db2.attach_child(a2)
        db2.attach_child(b2)

        async def wa2(tx):
            await tx.put(a2, 1)
            await tx.pause()
            await tx.pause()

        async def wb2(tx):
            await tx.put(b2, 1)

        kernel2 = run_programs(db2, {"A": wa2, "B": wb2}, protocol=SemanticLockingProtocol())
        assert kernel2.metrics.blocks == 0


class TestClosedNested:
    @staticmethod
    def _run_commuting_pair(protocol):
        """Reader tests 'paid' and lingers; writer then marks 'shipped'.

        ``ChangeStatus(shipped)`` commutes with ``TestStatus(paid)``
        (Fig. 3), so the semantic protocol lets them overlap; closed
        nested locking sees only the inherited R lock on the status atom
        and blocks the writer's Put until the reader commits.
        """
        from repro.core.kernel import TransactionManager
        from repro.runtime.scheduler import Scheduler

        built = build_order_entry_database(n_items=1, orders_per_item=1)
        order = built.order(0, 0)
        scheduler = Scheduler()
        kernel = TransactionManager(built.db, protocol=protocol, scheduler=scheduler)
        gate = scheduler.create_signal("reader-done-reading")

        async def reader(tx):
            result = await tx.call(order, "TestStatus", "paid")
            gate.fire()
            for __ in range(10):
                await tx.pause()  # hold the transaction open
            return result

        async def writer(tx):
            await gate
            await tx.call(order, "ChangeStatus", SHIPPED)

        kernel.spawn("R", reader)
        kernel.spawn("C", writer)
        kernel.run()
        return kernel

    def test_leaf_locks_inherited_until_top_commit(self):
        kernel = self._run_commuting_pair(ClosedNestedProtocol())
        writer_blocks = [e for e in kernel.trace.of_kind("block") if e.txn == "C"]
        assert writer_blocks, "closed nested locking should block the writer"
        assert writer_blocks[0].detail["waits_for"] == ["R"]
        assert kernel.handles["R"].result is False

    def test_semantic_protocol_does_not_block_commuting_pair(self):
        kernel = self._run_commuting_pair(SemanticLockingProtocol())
        # case 1 relief: the writer's leaf Put conflicts with the
        # reader's retained Get, but TestStatus(paid) is a committed
        # commuting ancestor of the Get — no block.
        writer_blocks = [e for e in kernel.trace.of_kind("block") if e.txn == "C"]
        assert writer_blocks == []


class TestNaiveOpenNested:
    def test_same_depth_workload_is_serializable(self):
        """Without bypassing, the Section-3 protocol is correct."""
        from repro.core.serializability import is_semantically_serializable

        for seed in range(5):
            built, kernel = ship_and_pay_same_orders(OpenNestedNaiveProtocol())
            result = is_semantically_serializable(kernel.history(), db=built.db)
            assert result.serializable

    def test_subtxn_completion_releases_descendant_locks(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)

        async def program(tx):
            await tx.call(built.item(0), "ShipOrder", 1)
            # at this point ShipOrder completed: only its own semantic
            # lock (plus the root's Transaction lock) should remain
            return None

        from repro.core.kernel import TransactionManager
        from repro.runtime.scheduler import Scheduler

        lock_counts = []
        kernel = TransactionManager(
            built.db, protocol=OpenNestedNaiveProtocol(), scheduler=Scheduler()
        )

        def probe(node, phase):
            if phase == "post" and node.invocation.operation == "ShipOrder":
                lock_counts.append(kernel.locks.lock_count)
            return None

        kernel.probe = probe
        kernel.spawn("T", program)
        kernel.run()
        assert lock_counts == [2]  # ShipOrder's own + the Transaction lock

"""Differential tests: indexed lock table vs. the scan-based oracle.

The owner/blocker indices and dirty-mark re-evaluation in
:class:`~repro.txn.locks.LockTable` are a pure performance change — the
PR's contract is that grant decisions, grant *order*, the trace stream,
and final database state are bit-identical to the original
scan-everything implementation, which is retained as
:class:`tests.helpers.ReferenceLockTable`.  Random order-entry workloads
under random interleavings are driven through both tables (same specs,
same scheduler seed, same protocol) and every observable compared.

A probe additionally runs :meth:`LockTable.check_invariants` at each
action boundary of the indexed run, so index/scan consistency is checked
*during* execution, not just at the quiesced end.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.protocol import SemanticLockingProtocol, SemanticNoReliefProtocol
from repro.protocols.closed_nested import ClosedNestedProtocol
from repro.protocols.open_nested_naive import OpenNestedNaiveProtocol
from repro.protocols.two_phase_object import ObjectRW2PLProtocol
from repro.protocols.two_phase_page import PageLockingProtocol
from repro.orderentry.schema import build_order_entry_database
from repro.txn.locks import LockTable

from tests.helpers import ReferenceLockTable, examples
from tests.test_properties import (
    N_ITEMS,
    ORDERS_PER_ITEM,
    canonical_state,
    make_program,
    seeds,
    snapshot,
    workload,
)


def _run(specs, seed, protocol_factory, lock_table_cls, check_invariants=False):
    from repro.core.kernel import TransactionManager
    from repro.runtime.scheduler import Scheduler

    built = build_order_entry_database(
        n_items=N_ITEMS, orders_per_item=ORDERS_PER_ITEM
    )
    programs = {
        f"X{i}-{spec[0]}": make_program(spec, built) for i, spec in enumerate(specs)
    }
    kernel = TransactionManager(
        built.db,
        protocol=protocol_factory(),
        scheduler=Scheduler(policy="random", seed=seed),
        lock_table_cls=lock_table_cls,
    )
    if check_invariants:
        kernel.probe = lambda node, phase: kernel.locks.check_invariants()
    for name, program in programs.items():
        kernel.spawn(name, program)
    kernel.run()
    if check_invariants:
        kernel.locks.check_invariants()
    return built, kernel


def observables(built, kernel):
    """Everything the optimisation must not change."""
    return {
        "trace": [e.to_dict() for e in kernel.trace],
        "grant_order": [
            (e.txn, e.node, e.kind, e.detail.get("target"))
            for e in kernel.trace.of_kind("grant", "regrant")
        ],
        "outcomes": {
            name: (h.committed, h.aborted, h.restarts)
            for name, h in kernel.handles.items()
        },
        "history": [
            (r.txn, r.node_id, r.operation, r.begin_seq)
            for r in kernel.history().records
        ],
        "state": snapshot(built.db),
        "canonical": canonical_state(built.db),
        "lock_totals": (
            kernel.locks.total_grants,
            kernel.locks.total_blocks,
            kernel.locks.max_locks_held,
            kernel.locks.lock_count,
            kernel.locks.pending_count,
        ),
    }


def assert_equivalent(specs, seed, protocol_factory):
    built_i, kernel_i = _run(specs, seed, protocol_factory, LockTable)
    built_r, kernel_r = _run(specs, seed, protocol_factory, ReferenceLockTable)
    obs_i = observables(built_i, kernel_i)
    obs_r = observables(built_r, kernel_r)
    for key in obs_i:
        assert obs_i[key] == obs_r[key], f"{key} diverged"


class TestIndexedTableMatchesReference:
    @settings(max_examples=examples(40), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_semantic(self, specs, seed):
        assert_equivalent(specs, seed, SemanticLockingProtocol)

    @settings(max_examples=examples(20), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_semantic_no_relief(self, specs, seed):
        assert_equivalent(specs, seed, SemanticNoReliefProtocol)

    @settings(max_examples=examples(20), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_closed_nested(self, specs, seed):
        assert_equivalent(specs, seed, ClosedNestedProtocol)

    @settings(max_examples=examples(15), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_object_2pl(self, specs, seed):
        assert_equivalent(specs, seed, ObjectRW2PLProtocol)

    @settings(max_examples=examples(15), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_page_2pl(self, specs, seed):
        assert_equivalent(specs, seed, PageLockingProtocol)

    @settings(max_examples=examples(15), deadline=None)
    @given(
        specs=st.lists(
            st.one_of(
                st.tuples(
                    st.just("T1"),
                    st.integers(0, N_ITEMS - 1),
                    st.integers(0, ORDERS_PER_ITEM - 1),
                    st.integers(0, N_ITEMS - 1),
                    st.integers(0, ORDERS_PER_ITEM - 1),
                ),
                st.tuples(
                    st.just("T2"),
                    st.integers(0, N_ITEMS - 1),
                    st.integers(0, ORDERS_PER_ITEM - 1),
                    st.integers(0, N_ITEMS - 1),
                    st.integers(0, ORDERS_PER_ITEM - 1),
                ),
            ),
            min_size=2,
            max_size=3,
        ),
        seed=seeds,
    )
    def test_open_nested_naive(self, specs, seed):
        # The naive protocol is only sound without encapsulation
        # bypassing (T1/T2), mirroring test_properties.
        assert_equivalent(specs, seed, OpenNestedNaiveProtocol)


class TestIndexInvariantsUnderLoad:
    """check_invariants holds at every action boundary of a random run."""

    @settings(max_examples=examples(25), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_semantic_invariants(self, specs, seed):
        __, kernel = _run(
            specs, seed, SemanticLockingProtocol, LockTable, check_invariants=True
        )
        assert kernel.locks.lock_count == 0
        assert kernel.locks.pending_count == 0

    @settings(max_examples=examples(15), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_reference_oracle_inherits_consistent_indices(self, specs, seed):
        """The oracle shares the index bookkeeping; its invariants must
        hold too, or the differential comparison proves nothing."""
        __, kernel = _run(
            specs, seed, SemanticLockingProtocol, ReferenceLockTable,
            check_invariants=True,
        )
        assert kernel.locks.lock_count == 0

"""RetryPolicy: backoff math, knob agreement, exhaustion escalation."""

from __future__ import annotations

import pytest

from repro.core.kernel import TransactionManager, run_transactions
from repro.errors import RetryExhausted, WorkloadError
from repro.faults import FaultPlan, FaultSpec
from repro.orderentry.transactions import make_t1, make_t2
from repro.txn.retry import DEFAULT_MAX_RESTARTS, RetryPolicy


class TestBackoffMath:
    def test_disabled_by_default(self):
        policy = RetryPolicy()
        assert policy.max_restarts == DEFAULT_MAX_RESTARTS == 25
        assert [policy.backoff_for(a) for a in (1, 2, 10)] == [0.0, 0.0, 0.0]
        assert policy.delay_for(3, base_cost=1.5) == 1.5

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(initial_backoff=1.0, backoff_factor=2.0, max_backoff=10.0)
        assert [policy.backoff_for(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 8.0]
        assert policy.backoff_for(5) == 10.0  # capped, not 16
        assert policy.backoff_for(50) == 10.0
        assert policy.delay_for(2, base_cost=1.0) == 3.0

    def test_zeroth_attempt_is_free(self):
        policy = RetryPolicy(initial_backoff=1.0)
        assert policy.backoff_for(0) == 0.0

    def test_exhaustion_predicate(self):
        policy = RetryPolicy(max_restarts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RetryPolicy(max_restarts=-1)
        with pytest.raises(WorkloadError):
            RetryPolicy(initial_backoff=-0.5)
        with pytest.raises(WorkloadError):
            RetryPolicy(backoff_factor=0.5)


class TestKnobAgreement:
    def test_max_subtxn_restarts_builds_a_policy(self, db):
        kernel = TransactionManager(db, max_subtxn_restarts=7)
        assert kernel.retry_policy == RetryPolicy(max_restarts=7)
        assert kernel.max_subtxn_restarts == 7

    def test_default_matches_historical_constant(self, db):
        kernel = TransactionManager(db)
        assert kernel.max_subtxn_restarts == DEFAULT_MAX_RESTARTS
        assert kernel.retry_policy == RetryPolicy()

    def test_agreeing_knobs_accepted(self, db):
        kernel = TransactionManager(
            db, retry_policy=RetryPolicy(max_restarts=9), max_subtxn_restarts=9
        )
        assert kernel.max_subtxn_restarts == 9

    def test_contradicting_knobs_rejected(self, db):
        with pytest.raises(ValueError, match="contradicts"):
            TransactionManager(
                db, retry_policy=RetryPolicy(max_restarts=9), max_subtxn_restarts=10
            )

    def test_setter_keeps_knobs_in_lockstep(self, db):
        kernel = TransactionManager(db)
        kernel.max_subtxn_restarts = 3
        assert kernel.retry_policy.max_restarts == 3
        assert kernel.max_subtxn_restarts == 3


class TestExhaustionEscalation:
    def storm(self, order_entry, policy):
        """T1 with an unlimited restart storm on its ShipOrder actions."""
        plan = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="restart",
                             txn="T1", operation="ShipOrder",
                             probability=1.0, max_fires=0),)
        )
        return run_transactions(
            order_entry.db,
            {"T1": make_t1(order_entry.item(0), 1, order_entry.item(1), 2)},
            faults=plan,
            retry_policy=policy,
        )

    def test_unbounded_restarts_escalate_to_abort(self, order_entry):
        kernel = self.storm(order_entry, RetryPolicy(max_restarts=4))
        handle = kernel.handles["T1"]
        assert handle.aborted and not handle.committed
        assert isinstance(handle.error, RetryExhausted)
        assert handle.restarts == 5  # budget of 4 + the exhausting attempt
        assert kernel.obs.snapshot().counter("retry.exhausted") == 1
        # escalation went through the normal abort path: no debris
        assert not kernel.locks.locks_held_by_tree(handle.root)
        assert not kernel.locks.pending_of_tree(handle.root)

    def test_backoff_spaces_retries_in_virtual_time(self, order_entry):
        limited = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="restart",
                             txn="T1", operation="ShipOrder", max_fires=3),)
        )
        kernel = run_transactions(
            order_entry.db,
            {"T1": make_t1(order_entry.item(0), 1, order_entry.item(1), 2)},
            faults=limited,
            retry_policy=RetryPolicy(initial_backoff=4.0, backoff_factor=2.0),
        )
        assert kernel.handles["T1"].committed  # storm ends, retry succeeds
        snapshot = kernel.obs.snapshot()
        assert snapshot.counter("retry.backoff_pauses") == 3
        hist = snapshot.histogram("retry.backoff_delay")
        assert hist.count == 3
        assert hist.sum == pytest.approx(4.0 + 8.0 + 16.0)
        backoffs = kernel.trace.of_kind("retry-backoff")
        assert [e.detail["delay"] for e in backoffs] == [4.0, 8.0, 16.0]

    def test_no_backoff_trace_without_configuration(self, order_entry):
        limited = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="restart",
                             txn="T1", operation="ShipOrder", max_fires=2),)
        )
        kernel = run_transactions(
            order_entry.db,
            {"T1": make_t1(order_entry.item(0), 1, order_entry.item(1), 2)},
            faults=limited,
        )
        assert kernel.handles["T1"].committed
        assert not kernel.trace.of_kind("retry-backoff")
        assert kernel.obs.snapshot().counter("retry.backoff_pauses") == 0

    def test_compensations_never_capped(self, order_entry):
        # An aborting transaction's compensations must run to completion
        # even when the restart budget is already spent: the cap checks
        # handle.aborting.
        plan = FaultPlan(
            specs=(
                FaultSpec(site="pre-acquire", action="restart",
                          txn="T1", operation="ShipOrder", max_fires=0),
            )
        )
        kernel = run_transactions(
            order_entry.db,
            {
                "T1": make_t1(order_entry.item(0), 1, order_entry.item(1), 2),
                "T2": make_t2(order_entry.item(0), 1, order_entry.item(1), 2),
            },
            faults=plan,
            retry_policy=RetryPolicy(max_restarts=2),
        )
        assert kernel.handles["T1"].aborted
        assert isinstance(kernel.handles["T1"].error, RetryExhausted)
        assert kernel.handles["T2"].committed
        for handle in kernel.handles.values():
            assert not kernel.locks.locks_held_by_tree(handle.root)

"""Tests for the sharded wall-clock scheduler: error aggregation,
shutdown drain, interrupt races, timer tri-state, and shard metrics.

These pin the two historical bugs — ``run()`` dropping all but
``_errors[0]`` and fired timers masquerading as cancelled — plus the
spawn/interrupt/ready races the sharded rewrite must keep closed.  Task
names hash to shards nondeterministically across interpreter runs
(``PYTHONHASHSEED``), so the concurrency tests are written to pass
under both same-shard and different-shard placements.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench.parallelism import run_scaling_point
from repro.core.protocol import SemanticLockingProtocol
from repro.errors import AggregateWorkerError, RuntimeEngineError
from repro.obs.registry import MetricsRegistry
from repro.runtime.scheduler import Scheduler, Task
from repro.runtime.threaded import ThreadedKernel, WallClockScheduler
from repro.runtime.threads import ThreadedRuntime

from tests.test_threaded_runtime import make_counter_db


class TestErrorAggregation:
    def test_single_error_raised_directly(self):
        sched = WallClockScheduler(n_threads=2)

        async def boom():
            raise ValueError("lone failure")

        sched.spawn("solo", boom())
        with pytest.raises(ValueError, match="lone failure"):
            sched.run()

    def test_concurrent_errors_all_surface(self):
        # Both tasks are mid-flight before either raises.  If they land
        # on the same shard, the barrier times out and both raise
        # BrokenBarrierError; on different shards both pass the barrier
        # and raise RuntimeError.  Either way run() must surface BOTH
        # errors, not just _errors[0].
        sched = WallClockScheduler(n_threads=2)
        barrier = threading.Barrier(2)

        def make_boom(tag):
            async def boom():
                try:
                    barrier.wait(timeout=1.5)
                except threading.BrokenBarrierError:
                    pass
                raise RuntimeError(f"boom-{tag}")

            return boom

        sched.spawn("boom-a", make_boom("a")())
        sched.spawn("boom-b", make_boom("b")())
        with pytest.raises(AggregateWorkerError) as excinfo:
            sched.run()
        assert len(excinfo.value.errors) == 2
        assert excinfo.value.__cause__ is excinfo.value.errors[0]
        messages = sorted(str(e) for e in excinfo.value.errors)
        assert messages == ["boom-a", "boom-b"]

    def test_threaded_runtime_concurrent_errors_all_surface(self):
        # Same pinning for the one-thread-per-transaction runtime.
        runtime = ThreadedRuntime(stall_timeout=5.0)
        barrier = threading.Barrier(2)

        def make_boom(tag):
            async def boom():
                try:
                    barrier.wait(timeout=1.5)
                except threading.BrokenBarrierError:
                    pass
                raise RuntimeError(f"boom-{tag}")

            return boom

        runtime.scheduler.spawn("a", make_boom("a")())
        runtime.scheduler.spawn("b", make_boom("b")())
        with pytest.raises(AggregateWorkerError) as excinfo:
            runtime.run()
        assert len(excinfo.value.errors) == 2
        messages = sorted(str(e) for e in excinfo.value.errors)
        assert messages == ["boom-a", "boom-b"]

    def test_blocked_task_drains_when_peer_fails(self):
        # A task parked on a never-fired signal must not wedge run()
        # after another worker fails: the waiter drains, and its
        # secondary drain error is NOT added to the aggregate.
        sched = WallClockScheduler(n_threads=2, stall_timeout=5.0)
        signal = sched.create_signal("never")

        async def waiter():
            await signal

        async def boom():
            time.sleep(0.1)  # let the waiter park first
            raise RuntimeError("primary failure")

        sched.spawn("waiter", waiter())
        sched.spawn("boom", boom())
        with pytest.raises(RuntimeError, match="primary failure"):
            sched.run()


class TestInterruptRaces:
    def test_interrupt_pending_task_not_dropped(self):
        # Interrupt delivered before run(): the task is still PENDING in
        # the runnable queue.  It must be driven exactly once and raise.
        sched = WallClockScheduler(n_threads=2)
        steps = []

        async def victim():
            steps.append("stepped")

        task = sched.spawn("victim", victim())
        sched.interrupt(task, RuntimeEngineError("interrupted while pending"))
        with pytest.raises(RuntimeEngineError, match="interrupted while pending"):
            sched.run()
        assert steps == []  # exception thrown in before the first step
        assert task.state == Task.FAILED

    def test_interrupt_blocked_task_wakes_it(self):
        sched = WallClockScheduler(n_threads=2, stall_timeout=5.0)
        signal = sched.create_signal("never")

        async def waiter():
            await signal

        task = sched.spawn("waiter", waiter())
        timer = threading.Timer(
            0.2, lambda: sched.interrupt(task, RuntimeEngineError("victimised"))
        )
        timer.daemon = True
        timer.start()
        with pytest.raises(RuntimeEngineError, match="victimised"):
            sched.run()

    def test_interrupt_finished_task_is_noop(self):
        sched = WallClockScheduler(n_threads=1)

        async def quick():
            return 42

        task = sched.spawn("quick", quick())
        sched.run()
        sched.interrupt(task, RuntimeEngineError("too late"))
        assert task.state == Task.DONE
        assert task.result == 42


class TestTimerTriState:
    def test_wall_timer_fired_is_not_cancelled(self):
        sched = WallClockScheduler(n_threads=1)
        fired = threading.Event()
        handle = sched.call_later(0.05, fired.set)
        assert fired.wait(timeout=2.0)
        time.sleep(0.01)  # let fire() finish flipping the state
        assert handle.fired
        assert not handle.cancelled

    def test_wall_timer_cancel_after_fire_is_noop(self):
        sched = WallClockScheduler(n_threads=1)
        fired = threading.Event()
        handle = sched.call_later(0.05, fired.set)
        assert fired.wait(timeout=2.0)
        time.sleep(0.01)
        handle.cancel()
        assert handle.fired
        assert not handle.cancelled  # cancel() after firing must not lie

    def test_wall_timer_cancel_before_deadline(self):
        sched = WallClockScheduler(n_threads=1)
        handle = sched.call_later(30.0, lambda: None)
        handle.cancel()
        assert handle.cancelled
        assert not handle.fired

    def test_virtual_timer_fired_is_not_cancelled(self):
        sched = Scheduler()
        fired = []
        handle = sched.call_later(5.0, lambda: fired.append(True))

        async def idle():
            return None

        sched.spawn("idle", idle())
        sched.run()
        assert fired == [True]
        assert handle.fired
        assert not handle.cancelled
        handle.cancel()  # must stay a no-op after firing
        assert not handle.cancelled

    def test_virtual_timer_cancel_before_deadline(self):
        sched = Scheduler()
        fired = []
        handle = sched.call_later(5.0, lambda: fired.append(True))
        handle.cancel()

        async def idle():
            return None

        sched.spawn("idle", idle())
        sched.run()
        assert fired == []
        assert handle.cancelled
        assert not handle.fired


class TestShardMetrics:
    def test_shard_counters_populated(self):
        db, counters = make_counter_db(2)
        registry = MetricsRegistry(thread_safe=True)
        kernel = ThreadedKernel(
            db, protocol=SemanticLockingProtocol(), n_threads=4, n_shards=4,
            obs=registry,
        )

        def make_program(counter):
            async def program(tx):
                await tx.call(counter, "Add", 1)

            return program

        for i in range(8):
            kernel.spawn(f"T{i}", make_program(counters[i % 2]))
        kernel.run()
        snap = registry.snapshot()
        assert snap.counter("shard.steps") > 0
        assert snap.counter("shard.coordinations") > 0
        assert snap.gauge("shard.count") == 4
        # shard.steps mirrors thread.steps: both count coroutine steps.
        assert snap.counter("shard.steps") == snap.counter("thread.steps")

    def test_scaling_point_is_consistent(self):
        point = run_scaling_point(4, n_transactions=8)
        assert point.consistent
        assert point.committed == 8
        assert point.n_shards > 0


class TestShardValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            WallClockScheduler(n_shards=0)

    def test_shard_assignment_in_range(self):
        sched = WallClockScheduler(n_threads=1, n_shards=3)

        async def idle():
            return None

        tasks = [sched.spawn(f"t{i}", idle()) for i in range(16)]
        assert all(0 <= t.shard < 3 for t in tasks)
        sched.run()

"""Unit tests for the object model base: OIDs and the composition tree."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.objects.base import DatabaseObject
from repro.objects.oid import Oid


def make(name: str, number: int = 0) -> DatabaseObject:
    return DatabaseObject(Oid("T", number), name)


class TestOid:
    def test_equality_and_hash(self):
        assert Oid("Item", 1) == Oid("Item", 1)
        assert Oid("Item", 1) != Oid("Item", 2)
        assert Oid("Item", 1) != Oid("Order", 1)
        assert len({Oid("Item", 1), Oid("Item", 1), Oid("Item", 2)}) == 2

    def test_str(self):
        assert str(Oid("Item", 3)) == "Item#3"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Oid("Item", 1).number = 2  # type: ignore[misc]


class TestCompositionTree:
    def test_attach_sets_parent_and_children(self):
        parent, child = make("p", 1), make("c", 2)
        parent.attach_child(child)
        assert child.parent is parent
        assert parent.children == (child,)

    def test_disjointness_enforced(self):
        a, b, child = make("a", 1), make("b", 2), make("c", 3)
        a.attach_child(child)
        with pytest.raises(SchemaError, match="disjoint"):
            b.attach_child(child)

    def test_cycle_rejected(self):
        a, b = make("a", 1), make("b", 2)
        a.attach_child(b)
        with pytest.raises(SchemaError, match="cycle"):
            b.attach_child(a)

    def test_self_attach_rejected(self):
        a = make("a", 1)
        with pytest.raises(SchemaError, match="cycle"):
            a.attach_child(a)

    def test_detach(self):
        parent, child = make("p", 1), make("c", 2)
        parent.attach_child(child)
        parent.detach_child(child)
        assert child.parent is None
        assert parent.children == ()

    def test_detach_wrong_parent(self):
        parent, other, child = make("p", 1), make("o", 2), make("c", 3)
        parent.attach_child(child)
        with pytest.raises(SchemaError):
            other.detach_child(child)

    def test_reattach_after_detach_allowed(self):
        a, b, child = make("a", 1), make("b", 2), make("c", 3)
        a.attach_child(child)
        a.detach_child(child)
        b.attach_child(child)
        assert child.parent is b

    def test_ancestors_bottom_up(self):
        a, b, c = make("a", 1), make("b", 2), make("c", 3)
        a.attach_child(b)
        b.attach_child(c)
        assert [x.name for x in c.composition_ancestors()] == ["b", "a"]
        assert [x.name for x in c.composition_ancestors(include_self=True)] == ["c", "b", "a"]

    def test_is_composition_ancestor_of(self):
        a, b, c, d = make("a", 1), make("b", 2), make("c", 3), make("d", 4)
        a.attach_child(b)
        b.attach_child(c)
        assert a.is_composition_ancestor_of(c)
        assert not c.is_composition_ancestor_of(a)
        assert not a.is_composition_ancestor_of(a)  # strict
        assert not a.is_composition_ancestor_of(d)

    def test_subtree_preorder(self):
        a, b, c, d = make("a", 1), make("b", 2), make("c", 3), make("d", 4)
        a.attach_child(b)
        a.attach_child(d)
        b.attach_child(c)
        assert [x.name for x in a.subtree()] == ["a", "b", "c", "d"]

    def test_path(self):
        a, b, c = make("DB", 1), make("Items", 2), make("i1", 3)
        a.attach_child(b)
        b.attach_child(c)
        assert c.path == "DB.Items.i1"

"""Integration tests: the kernel executing transactions end to end."""

from __future__ import annotations

import pytest

from repro.core.kernel import TransactionManager
from repro.objects.database import Database
from repro.objects.encapsulated import TypeSpec
from repro.runtime.scheduler import Scheduler

from tests.helpers import run_programs


@pytest.fixture
def counter_world():
    """A database with an encapsulated counter built on an atom."""
    spec = TypeSpec("Counter")

    @spec.method(inverse=lambda result, args: ("Add", (-args[0],)))
    async def Add(ctx, counter, amount):
        value_atom = counter.impl_component("value")
        value = await ctx.get(value_atom)
        await ctx.put(value_atom, value + amount)
        return value + amount

    @spec.method(readonly=True)
    async def Value(ctx, counter):
        return await ctx.get(counter.impl_component("value"))

    m = spec.matrix
    m.allow("Add", "Add")          # increments commute
    m.conflict("Add", "Value")     # reading observes increments
    m.allow("Value", "Value")
    spec.validate()

    db = Database()
    counter = db.new_encapsulated(spec, "c")
    db.attach_child(counter)
    impl = db.new_tuple("c-impl")
    impl.add_component("value", db.new_atom("value", 0))
    counter.set_implementation(impl)
    return db, counter


class TestSingleTransaction:
    def test_result_and_commit(self, counter_world):
        db, counter = counter_world

        async def program(tx):
            return await tx.call(counter, "Add", 5)

        kernel = run_programs(db, {"T": program})
        handle = kernel.handles["T"]
        assert handle.committed and not handle.aborted
        assert handle.result == 5
        assert counter.impl_component("value").raw_get() == 5

    def test_nested_invocation_tree_in_history(self, counter_world):
        db, counter = counter_world

        async def program(tx):
            await tx.call(counter, "Add", 1)

        kernel = run_programs(db, {"T": program})
        history = kernel.history()
        root = history.top_level()[0]
        add = history.children_of(root.node_id)[0]
        leaves = history.children_of(add.node_id)
        assert add.operation == "Add"
        assert [leaf.operation for leaf in leaves] == ["Get", "Put"]
        assert add.begin_seq < leaves[0].begin_seq
        assert add.end_seq > leaves[-1].end_seq

    def test_all_locks_released_after_commit(self, counter_world):
        db, counter = counter_world

        async def program(tx):
            await tx.call(counter, "Add", 1)

        kernel = run_programs(db, {"T": program})
        assert kernel.locks.lock_count == 0
        assert kernel.locks.pending_count == 0

    def test_generic_ops_direct(self, db):
        atom = db.new_atom("x", 10)
        db.attach_child(atom)

        async def program(tx):
            value = await tx.get(atom)
            await tx.put(atom, value * 2)
            return await tx.get(atom)

        kernel = run_programs(db, {"T": program})
        assert kernel.handles["T"].result == 20

    def test_set_ops_direct(self, db):
        s = db.new_set("s")
        db.attach_child(s)
        member = db.new_atom("m", 1)

        async def program(tx):
            await tx.insert(s, 1, member)
            selected = await tx.select(s, 1)
            size = await tx.size(s)
            scanned = await tx.scan(s)
            removed = await tx.remove(s, 1)
            return (selected is member, size, len(scanned), removed is member)

        kernel = run_programs(db, {"T": program})
        assert kernel.handles["T"].result == (True, 1, 1, True)

    def test_metrics_count_actions_and_commits(self, counter_world):
        db, counter = counter_world

        async def program(tx):
            await tx.call(counter, "Add", 1)

        kernel = run_programs(db, {"T": program})
        assert kernel.metrics.commits == 1
        assert kernel.metrics.actions == 3  # Add + Get + Put


class TestConcurrentTransactions:
    def test_commuting_adds_do_not_block_at_method_level(self, counter_world):
        """Two Add transactions: semantic locks compatible; the leaf
        Put conflict is relieved through the commuting Add ancestors."""
        db, counter = counter_world

        def adder(amount):
            async def program(tx):
                return await tx.call(counter, "Add", amount)
            return program

        kernel = run_programs(db, {"A": adder(2), "B": adder(3)})
        assert counter.impl_component("value").raw_get() == 5
        assert kernel.handles["A"].committed and kernel.handles["B"].committed
        # The only blocks permitted are leaf-level case-2 waits, which
        # resolve at subtransaction commit, never top-level waits.
        for event in kernel.trace.of_kind("block"):
            assert event.detail["waits_for"] != [
                "A"
            ] and event.detail["waits_for"] != ["B"]

    def test_reader_blocks_until_adder_commits(self, counter_world):
        db, counter = counter_world
        order: list[str] = []

        async def adder(tx):
            await tx.call(counter, "Add", 7)
            await tx.pause()
            await tx.pause()
            order.append("adder-done")

        async def reader(tx):
            value = await tx.call(counter, "Value")
            order.append(f"read:{value}")
            return value

        kernel = run_programs(db, {"A": adder, "R": reader})
        assert kernel.handles["R"].result == 7
        assert order == ["adder-done", "read:7"]  # reader waited for commit

    def test_determinism_same_seed_same_history(self, counter_world):
        db_template = counter_world  # only used for spec; rebuild per run

        def run_once(seed):
            spec_db, counter = _fresh_counter()
            def adder(amount):
                async def program(tx):
                    return await tx.call(counter, "Add", amount)
                return program
            kernel = run_programs(
                spec_db,
                {"A": adder(1), "B": adder(2), "C": adder(3)},
                policy="random",
                seed=seed,
            )
            return [
                (r.txn, r.operation, r.begin_seq) for r in kernel.history().records
            ]

        assert run_once(5) == run_once(5)

    def test_handles_record_clock_span(self, counter_world):
        db, counter = counter_world
        from repro.core.kernel import CostModel

        async def program(tx):
            await tx.call(counter, "Add", 1)

        scheduler = Scheduler()
        kernel = TransactionManager(
            db, scheduler=scheduler, cost_model=CostModel(generic_op=1.0, method_op=2.0)
        )
        kernel.spawn("T", program)
        kernel.run()
        handle = kernel.handles["T"]
        assert handle.response_time == pytest.approx(4.0)  # 2 + 1 + 1


def _fresh_counter():
    spec = TypeSpec("Counter2")

    @spec.method
    async def Add(ctx, counter, amount):
        atom = counter.impl_component("value")
        await ctx.put(atom, await ctx.get(atom) + amount)
        return None

    spec.matrix.allow("Add", "Add")
    db = Database()
    counter = db.new_encapsulated(spec, "c")
    db.attach_child(counter)
    impl = db.new_tuple("impl")
    impl.add_component("value", db.new_atom("value", 0))
    counter.set_implementation(impl)
    return db, counter

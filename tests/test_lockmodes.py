"""Tests for semantic lock-mode derivation (Ko83/SS84 per Section 3)."""

from __future__ import annotations

from repro.orderentry.schema import ITEM_TYPE, ORDER_TYPE
from repro.semantics.compatibility import CompatibilityMatrix
from repro.semantics.generic import ATOM_MATRIX, SET_MATRIX
from repro.semantics.invocation import Invocation
from repro.semantics.lockmodes import LockMode, LockModeTable


class TestBasics:
    def test_one_mode_per_operation(self):
        table = LockModeTable(ATOM_MATRIX)
        assert set(table.modes) == {"Get", "Put"}
        assert table.mode_for("Get").name == "Atom.Get"

    def test_mode_compatibility_follows_matrix(self):
        table = LockModeTable(ATOM_MATRIX)
        get, put = table.mode_for("Get"), table.mode_for("Put")
        g, p = Invocation("Get"), Invocation("Put", (1,))
        assert table.compatible(get, g, get, g)
        assert not table.compatible(get, g, put, p)
        assert not table.compatible(put, p, put, p)

    def test_parameter_dependence_passes_through(self):
        table = LockModeTable(ORDER_TYPE.matrix)
        cs = table.mode_for("ChangeStatus")
        ts = table.mode_for("TestStatus")
        assert table.compatible(
            cs, Invocation("ChangeStatus", ("shipped",)),
            ts, Invocation("TestStatus", ("paid",)),
        )
        assert not table.compatible(
            cs, Invocation("ChangeStatus", ("paid",)),
            ts, Invocation("TestStatus", ("paid",)),
        )


class TestMinimalModes:
    def test_identical_rows_merge(self):
        m = CompatibilityMatrix("T", ["A", "B", "C"])
        # A and B have identical rows; C conflicts with everything
        m.allow("A", "A")
        m.allow("A", "B")
        m.allow("B", "B")
        m.conflict("A", "C")
        m.conflict("B", "C")
        m.conflict("C", "C")
        assignment = LockModeTable(m).minimal_modes()
        assert assignment["A"] == assignment["B"] == "T.A"
        assert assignment["C"] == "T.C"

    def test_param_rows_stay_individual(self):
        assignment = LockModeTable(ORDER_TYPE.matrix).minimal_modes()
        # every Order operation has parameter-dependent cells
        assert len(set(assignment.values())) == 3

    def test_atom_modes_distinct(self):
        assignment = LockModeTable(ATOM_MATRIX).minimal_modes()
        assert assignment["Get"] != assignment["Put"]


class TestClassicRWView:
    def test_atom_matrix_is_classical(self):
        """The paper: conventional locking is a special case."""
        view = LockModeTable(ATOM_MATRIX).classic_rw_view()
        assert view == {"Get": "R", "Put": "W"}

    def test_order_matrix_is_not_classical(self):
        assert LockModeTable(ORDER_TYPE.matrix).classic_rw_view() is None

    def test_item_matrix_is_not_classical(self):
        assert LockModeTable(ITEM_TYPE.matrix).classic_rw_view() is None

    def test_set_matrix_is_not_classical(self):
        # keyed parameter dependence is beyond R/W
        assert LockModeTable(SET_MATRIX).classic_rw_view() is None

    def test_pure_reader_matrix(self):
        m = CompatibilityMatrix("T", ["A", "B"])
        m.allow("A", "A")
        m.allow("A", "B")
        m.allow("B", "B")
        view = LockModeTable(m).classic_rw_view()
        assert view == {"A": "R", "B": "R"}

    def test_incoherent_matrix_rejected(self):
        # A compatible with B but not with itself: not R/W shaped
        m = CompatibilityMatrix("T", ["A", "B"])
        m.conflict("A", "A")
        m.allow("A", "B")
        m.allow("B", "B")
        assert LockModeTable(m).classic_rw_view() is None


class TestRendering:
    def test_format_table(self):
        text = LockModeTable(ORDER_TYPE.matrix).format_table()
        assert "lock modes of Order" in text
        assert "ChangeStatus" in text
        assert "TestStatus?" in text  # parameter-dependent marker

    def test_lockmode_str(self):
        mode = LockMode("Item", "ShipOrder")
        assert str(mode) == "Item.ShipOrder"
        shared = LockMode("Item", "ShipOrder", shared_as="Item.S")
        assert shared.name == "Item.S"

"""Golden tests for the TraceEvent schema and kernel determinism.

The trace log is the kernel's public observability surface: tests, the
timeline renderer, and the JSONL export all consume it.  This module
locks the contract down:

* every emitted event uses a known kind and carries that kind's
  required detail keys, with JSON-serializable values;
* the JSONL export round-trips losslessly;
* a run is a deterministic function of (workload, policy, seed) — the
  trace log AND the metrics snapshot of two identical runs are equal.
"""

from __future__ import annotations

import io
import json

from repro.core.kernel import run_transactions
from repro.core.protocol import SemanticLockingProtocol
from repro.orderentry.workload import OrderEntryWorkload, WorkloadConfig
from repro.util.tracelog import TraceEvent, TraceLog

#: kind -> detail keys every event of that kind must carry.
TRACE_SCHEMA: dict[str, frozenset[str]] = {
    "begin": frozenset(),
    "request": frozenset({"target", "mode"}),
    "grant": frozenset({"target", "mode"}),
    "block": frozenset({"target", "mode", "waits_for"}),
    "wake": frozenset({"target", "mode"}),
    "regrant": frozenset({"target"}),
    "retain": frozenset(),
    "commit": frozenset(),
    "release": frozenset({"count"}),
    "abort": frozenset({"reason"}),
    "deadlock": frozenset({"cycle", "victim", "resolution"}),
    "die": frozenset({"holders"}),
    "wound": frozenset({"victim"}),
    "restart": frozenset(),
    "restart-released": frozenset({"count"}),
    "undo": frozenset({"what"}),
    "compensate": frozenset({"with_"}),
    "structural-undo-fallback": frozenset(),
}

#: Kinds the reference workload below must exercise — keeps the schema
#: assertions from passing vacuously.
CORE_KINDS = frozenset(
    {
        "begin",
        "request",
        "grant",
        "block",
        "wake",
        "regrant",
        "commit",
        "release",
        "abort",
        "deadlock",
        "compensate",
    }
)

SEED = 2  # exercises deadlock resolution and compensation


def run_reference_workload():
    mix = {"T1": 1.0, "T2": 1.0, "T3": 1.0, "T4": 1.0, "T5": 1.0}
    workload = OrderEntryWorkload(
        WorkloadConfig(n_items=2, orders_per_item=2, mix=mix, seed=SEED)
    )
    programs = dict(workload.take(8))
    return run_transactions(
        workload.db,
        programs,
        protocol=SemanticLockingProtocol(),
        policy="random",
        seed=SEED,
    )


class TestTraceSchema:
    def test_every_event_conforms(self):
        kernel = run_reference_workload()
        for event in kernel.trace:
            assert event.kind in TRACE_SCHEMA, f"unknown trace kind {event.kind!r}"
            missing = TRACE_SCHEMA[event.kind] - event.detail.keys()
            assert not missing, f"{event.kind} event missing detail keys {missing}"

    def test_reference_workload_covers_core_kinds(self):
        kernel = run_reference_workload()
        seen = {event.kind for event in kernel.trace}
        assert CORE_KINDS <= seen, f"missing kinds: {CORE_KINDS - seen}"

    def test_detail_value_shapes(self):
        kernel = run_reference_workload()
        for event in kernel.trace:
            detail = event.detail
            if event.kind in ("request", "grant", "block", "wake"):
                assert isinstance(detail["target"], str)
                assert isinstance(detail["mode"], str)
            if event.kind == "block":
                waits_for = detail["waits_for"]
                assert isinstance(waits_for, list)
                assert all(isinstance(w, str) for w in waits_for)
                assert waits_for == sorted(waits_for)
            if event.kind in ("release", "restart-released"):
                assert isinstance(detail["count"], int)
            if event.kind == "deadlock":
                assert isinstance(detail["cycle"], list)
                assert detail["victim"] in detail["cycle"]
                assert detail["resolution"] in ("abort", "restart")

    def test_events_are_json_serializable(self):
        kernel = run_reference_workload()
        for event in kernel.trace:
            parsed = json.loads(json.dumps(event.to_dict()))
            assert parsed["kind"] == event.kind
            assert parsed["seq"] == event.seq


class TestTraceJsonl:
    def test_round_trip(self):
        kernel = run_reference_workload()
        buffer = io.StringIO()
        written = kernel.trace.write_jsonl(buffer)
        assert written == len(kernel.trace)
        restored = TraceLog.read_jsonl(buffer.getvalue().splitlines())
        assert [e.to_dict() for e in restored] == [e.to_dict() for e in kernel.trace]

    def test_event_dict_round_trip(self):
        event = TraceEvent(
            seq=7, kind="block", node="n1", txn="T1",
            detail={"target": "Oid(3)", "mode": "Get()", "waits_for": ["T2"]},
        )
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestDeterminism:
    """Same workload + policy + seed => identical trace and metrics.

    This is the regression the whole test suite leans on: scripted and
    random-policy scenarios only reproduce if the kernel has no hidden
    nondeterminism (dict ordering, id()-based tie-breaks, wall-clock
    reads) anywhere on the hot path — including the metrics layer.
    """

    def test_trace_and_metrics_reproduce_exactly(self):
        first = run_reference_workload()
        second = run_reference_workload()
        assert [e.to_dict() for e in first.trace] == [e.to_dict() for e in second.trace]
        assert first.obs.snapshot() == second.obs.snapshot()
        assert first.obs.snapshot().to_dict() == second.obs.snapshot().to_dict()

    def test_reference_workload_is_eventful(self):
        """The determinism assertion must cover conflict handling, not
        just straight-line commits."""
        kernel = run_reference_workload()
        assert kernel.metrics.deadlocks > 0
        assert kernel.metrics.compensations > 0
        snapshot = kernel.obs.snapshot()
        assert snapshot.counter("lock.blocks") > 0

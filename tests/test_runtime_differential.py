"""Differential tests: threaded runtime vs. the virtual-time oracle.

The acceptance bar from the runtime issue: identical serializability
verdicts and committed-state equivalence on >= 20 seeded workloads
across all six protocols.  4 seeds x 6 protocols = 24 workloads here,
plus a handful of shape/diagnostic cases.
"""

from __future__ import annotations

import pytest

from repro.runtime.differential import (
    DIFFERENTIAL_PROTOCOLS,
    run_differential,
    run_differential_sweep,
)

SEEDS = (0, 1, 2, 3)

# The naive open-nested protocol is deliberately unsound under the
# encapsulation-bypassing T3/T4 status checks (the Fig. 5 anomaly the
# torture harness documents), and whether the anomaly manifests depends
# on the interleaving — so the full-equivalence sweep runs it on the
# bypass-free mix, where it is sound.  The default mix is covered by
# test_naive_protocol_anomaly_agreement below.
NO_BYPASS_MIX = {"T1": 1.0, "T2": 1.0, "T5": 1.0}
PROTOCOL_MIX = {"open-nested-naive": NO_BYPASS_MIX}


@pytest.mark.parametrize("protocol", sorted(DIFFERENTIAL_PROTOCOLS))
@pytest.mark.parametrize("seed", SEEDS)
def test_runtimes_agree(protocol: str, seed: int) -> None:
    report = run_differential(
        protocol, seed=seed, n_transactions=6, mix=PROTOCOL_MIX.get(protocol)
    )
    assert report.verdicts_identical, report.summary()
    assert report.virtual.serializable, report.summary()
    assert report.threaded.serializable, report.summary()
    assert report.virtual.state_matches_serial, report.summary()
    assert report.threaded.state_matches_serial, report.summary()


def test_naive_protocol_anomaly_agreement() -> None:
    # Under the default mix (with T3/T4 bypass reads) the naive protocol
    # may produce non-serializable histories; the differential guarantee
    # is that both runtimes reach the *same* verdict on each workload.
    report = run_differential("open-nested-naive", seed=0, n_transactions=6)
    assert report.verdicts_identical, report.summary()


def test_report_accounts_for_every_transaction() -> None:
    report = run_differential("semantic", seed=7, n_transactions=5)
    for outcome in (report.virtual, report.threaded):
        assert len(outcome.committed) + len(outcome.aborted) == 5
        # the serial order covers exactly the committed set
        assert sorted(outcome.serial_order) == list(outcome.committed)


def test_higher_contention_single_item() -> None:
    # n_items=1 maximises collisions (every transaction hits the same
    # item); the cross-check must still hold.
    report = run_differential(
        "semantic", seed=11, n_transactions=6, n_items=1, orders_per_item=3
    )
    assert report.ok, report.summary()


def test_sweep_helper_covers_grid() -> None:
    reports = run_differential_sweep(
        seeds=(5,), protocols=("semantic", "object-rw-2pl"), n_transactions=4
    )
    assert len(reports) == 2
    assert {r.protocol for r in reports} == {"semantic", "object-rw-2pl"}
    assert all(r.ok for r in reports), [r.summary() for r in reports]

"""Unit tests for the lock table: grants, FCFS queues, release modes."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolViolation
from repro.objects.oid import Oid
from repro.runtime.scheduler import Scheduler
from repro.semantics.invocation import Invocation
from repro.txn.locks import LockTable
from repro.txn.transaction import TransactionNode

X = Oid("Atom", 1)
Y = Oid("Atom", 2)


def node(tree_id: str, parent: TransactionNode | None = None, op: str = "Op") -> TransactionNode:
    target = X
    return TransactionNode(tree_id, parent, target, Invocation(op, (tree_id,)))


def root_and_child(name: str) -> tuple[TransactionNode, TransactionNode]:
    root = TransactionNode(name, None, Oid("Database", 0), Invocation("Transaction", (name,)))
    child = TransactionNode(f"{name}.1", root, X, Invocation("Op", (name,)))
    return root, child


def never_conflicts(holder, h_inv, requester, r_inv, target):
    return None


def always_conflicts(holder, h_inv, requester, r_inv, target):
    return holder.root()


def make_signal():
    return Scheduler().create_signal()


class TestGrantAndBlock:
    def test_grant_and_inspect(self):
        table = LockTable()
        __, child = root_and_child("T1")
        lock = table.grant(child, X, child.invocation)
        assert table.locks_on(X) == (lock,)
        assert table.lock_count == 1
        assert table.total_grants == 1

    def test_compute_blockers_against_held(self):
        table = LockTable()
        r1, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")
        table.grant(c1, X, c1.invocation)
        blockers = table.compute_blockers(c2, X, c2.invocation, always_conflicts)
        assert blockers == {r1}
        assert not table.compute_blockers(c2, X, c2.invocation, never_conflicts)

    def test_blockers_include_earlier_queued_requests(self):
        """FCFS: a request conflicts with earlier queued requests too."""
        table = LockTable()
        r1, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")
        table.enqueue(c1, X, c1.invocation, make_signal())
        blockers = table.compute_blockers(c2, X, c2.invocation, always_conflicts)
        assert blockers == {r1}

    def test_before_seq_limits_queue_check(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")
        p1 = table.enqueue(c1, X, c1.invocation, make_signal())
        table.enqueue(c2, X, c2.invocation, make_signal())
        # re-testing p1 must not see the later request
        blockers = table.compute_blockers(
            c1, X, c1.invocation, always_conflicts, before_seq=p1.enqueue_seq
        )
        assert blockers == set()


class TestReevaluate:
    def test_grant_in_fcfs_order(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")

        # conflict tester: everyone conflicts with everyone else
        table.enqueue(c1, X, c1.invocation, make_signal())
        table.enqueue(c2, X, c2.invocation, make_signal())

        granted = table.reevaluate(never_conflicts)
        # With no conflicts both are granted, in FCFS order.
        assert [p.node for p in granted] == [c1, c2]
        assert table.pending_count == 0
        assert table.lock_count == 2

    def test_no_overtaking_past_conflicting_earlier_request(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")
        __, blocker = root_and_child("T0")
        table.grant(blocker, X, blocker.invocation)

        def tester(holder, h_inv, requester, r_inv, target):
            # T1 conflicts with the held lock; T2 conflicts with T1 only.
            if requester is c1 and holder is blocker:
                return holder.root()
            if requester is c2 and holder is c1:
                return holder.root()
            return None

        table.enqueue(c1, X, c1.invocation, make_signal())
        table.enqueue(c2, X, c2.invocation, make_signal())
        granted = table.reevaluate(tester)
        # T1 still blocked by the held lock; T2 must not overtake T1.
        assert granted == []
        assert table.pending_count == 2

    def test_granted_signal_fires(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        signal = make_signal()
        table.enqueue(c1, X, c1.invocation, signal)
        table.reevaluate(never_conflicts)
        assert signal.done


class TestRelease:
    def test_release_tree(self):
        table = LockTable()
        r1, c1 = root_and_child("T1")
        r2, c2 = root_and_child("T2")
        table.grant(r1, Oid("Database", 0), r1.invocation)
        table.grant(c1, X, c1.invocation)
        table.grant(c2, X, c2.invocation)
        released = table.release_tree(r1)
        assert len(released) == 2
        assert table.lock_count == 1
        assert table.locks_on(X)[0].node is c2

    def test_release_descendant_locks_keeps_own(self):
        table = LockTable()
        root, mid = root_and_child("T1")
        leaf = TransactionNode("T1.1.1", mid, Y, Invocation("Get"))
        table.grant(mid, X, mid.invocation)
        table.grant(leaf, Y, leaf.invocation)
        released = table.release_descendant_locks(mid)
        assert [lk.node for lk in released] == [leaf]
        assert table.locks_on(X)[0].node is mid  # own lock kept

    def test_reassign_locks_to_parent(self):
        table = LockTable()
        root, mid = root_and_child("T1")
        leaf = TransactionNode("T1.1.1", mid, Y, Invocation("Get"))
        table.grant(leaf, Y, leaf.invocation)
        moved = table.reassign_locks_to_parent(mid)
        # the leaf's lock now belongs to mid's parent (the root)
        assert table.locks_on(Y)[0].node is root
        assert len(moved) == 1

    def test_reassign_toplevel_rejected(self):
        table = LockTable()
        root, __ = root_and_child("T1")
        with pytest.raises(ProtocolViolation):
            table.reassign_locks_to_parent(root)

    def test_release_unknown_lock_rejected(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        lock = table.grant(c1, X, c1.invocation)
        table.release_lock(lock)
        with pytest.raises(ProtocolViolation):
            table.release_lock(lock)

    def test_cancel_pending(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        pending = table.enqueue(c1, X, c1.invocation, make_signal())
        table.cancel(pending)
        assert table.pending_count == 0
        table.cancel(pending)  # idempotent


class TestGrantClockStamping:
    def test_grant_before_bind_metrics_does_not_inflate_hold_time(self):
        """Regression: grant_clock was only stamped when metrics were
        already bound, so a lock granted before ``bind_metrics`` kept
        grant_clock = 0.0 and its later release recorded the full run
        time as the hold time."""
        from repro.obs import MetricsRegistry

        now = {"t": 5.0}
        table = LockTable(clock=lambda: now["t"])
        __, c1 = root_and_child("T1")
        lock = table.grant(c1, X, c1.invocation)
        assert lock.grant_clock == 5.0  # stamped even without metrics

        now["t"] = 100.0
        registry = MetricsRegistry()
        table.bind_metrics(registry)
        now["t"] = 103.0
        table.release_lock(lock)

        hist = registry.histogram("lock.hold_time", LockTable.HOLD_TIME_BUCKETS)
        assert hist.count == 1
        assert hist.sum == 103.0 - 5.0  # not 103.0 - 0.0

    def test_grant_clock_with_metrics_bound_from_start(self):
        now = {"t": 2.0}
        from repro.obs import MetricsRegistry

        table = LockTable(metrics=MetricsRegistry(), clock=lambda: now["t"])
        __, c1 = root_and_child("T1")
        assert table.grant(c1, X, c1.invocation).grant_clock == 2.0


class TestBlockerIndexAndCancel:
    def test_cancel_clears_blockers_and_blocker_index(self):
        """Regression: cancel used to leave pending.blockers populated,
        which would feed stale waits-for edges."""
        table = LockTable()
        r0, c0 = root_and_child("T0")
        __, c1 = root_and_child("T1")
        table.grant(c0, X, c0.invocation)
        pending = table.enqueue(c1, X, c1.invocation, make_signal())
        table.set_blockers(pending, {r0})
        assert pending.blockers == {r0}

        events = []
        table.on_waits_changed = lambda p: events.append(set(p.blockers))
        table.cancel(pending)
        assert pending.blockers == set()
        assert events == [set()]  # waiter's edges cleared through the hook
        table.check_invariants()  # no stale blocker-index entries

    def test_set_blockers_replaces_reverse_index_entries(self):
        table = LockTable()
        r0, __ = root_and_child("T0")
        r2, __ = root_and_child("T2")
        __, c1 = root_and_child("T1")
        pending = table.enqueue(c1, X, c1.invocation, make_signal())
        table.set_blockers(pending, {r0})
        table.set_blockers(pending, {r2})  # r0 entry must be dropped
        table.check_invariants()
        table.cancel(pending)
        table.check_invariants()

    def test_cancel_dirties_target_for_later_requests(self):
        """Entries queued behind a cancelled request were conflict-tested
        against it; the queue must be re-tested after the cancel."""
        table = LockTable()
        __, h = root_and_child("T0")
        __, d1 = root_and_child("T1")
        __, d2 = root_and_child("T2")
        table.grant(h, X, h.invocation)

        def tester(holder, h_inv, requester, r_inv, target):
            if requester is d1:
                return holder.root()  # d1 conflicts with the holder
            if holder is d1:
                return holder.root()  # d2 conflicts with queued d1 only
            return None

        q1 = table.enqueue(d1, X, d1.invocation, make_signal())
        table.enqueue(d2, X, d2.invocation, make_signal())
        assert table.reevaluate(tester) == []  # d1 on T0, d2 on T1 (FCFS)

        # Cancelling q1 dirties X; d2's blocker (d1) is gone on re-test.
        table.cancel(q1)
        granted = table.reevaluate(tester)
        assert [p.node for p in granted] == [d2]
        table.check_invariants()

    def test_pending_of_tree_in_enqueue_order(self):
        table = LockTable()
        r1, c1 = root_and_child("T1")
        d1 = TransactionNode("T1.2", r1, Y, Invocation("Get"))
        __, c2 = root_and_child("T2")
        p_a = table.enqueue(c1, X, c1.invocation, make_signal())
        table.enqueue(c2, X, c2.invocation, make_signal())
        p_b = table.enqueue(d1, Y, d1.invocation, make_signal())
        assert table.pending_of_tree(r1) == [p_a, p_b]
        table.cancel(p_a)
        assert table.pending_of_tree(r1) == [p_b]


class TestReevaluateSkipsUntouchedQueues:
    """The dirty-mark contract: a queue is only re-tested when its
    granted set changed, its queue changed, or a recorded blocker
    completed — otherwise its prior outcome is provably unchanged."""

    def test_unrelated_release_skips_queue(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        table = LockTable(metrics=registry)
        r0, c0 = root_and_child("T0")
        __, c1 = root_and_child("T1")
        __, other = root_and_child("T9")
        table.grant(c0, X, c0.invocation)
        lock_y = table.grant(other, Y, other.invocation)

        pending = table.enqueue(c1, X, c1.invocation, make_signal())
        assert table.reevaluate(always_conflicts) == []
        tests_before = table.total_conflict_tests

        # Releasing an unrelated lock must not re-test the X queue.
        table.release_lock(lock_y)
        assert table.reevaluate(always_conflicts) == []
        assert table.total_conflict_tests == tests_before
        snapshot = registry.snapshot()
        assert snapshot.counter("lock.reeval_queues_skipped") >= 1
        assert pending.blockers == {r0}

    def test_notify_node_completed_retests_blocked_queue(self):
        table = LockTable()
        r0, c0 = root_and_child("T0")
        __, c1 = root_and_child("T1")
        table.grant(c0, X, c0.invocation)
        table.enqueue(c1, X, c1.invocation, make_signal())
        assert table.reevaluate(always_conflicts) == []

        # Queue untouched: even a now-permissive tester is not consulted.
        assert table.reevaluate(never_conflicts) == []

        # The recorded blocker completing flags the queue for re-test.
        table.notify_node_completed(r0)
        granted = table.reevaluate(never_conflicts)
        assert [p.node for p in granted] == [c1]
        table.check_invariants()

    def test_notify_node_completed_dirties_own_lock_targets(self):
        """A completing node's lock targets are re-dirtied: its state
        changes become visible to state-dependent conflict tests."""
        table = LockTable()
        __, c0 = root_and_child("T0")
        __, c1 = root_and_child("T1")
        table.grant(c0, X, c0.invocation)
        table.enqueue(c1, X, c1.invocation, make_signal())
        assert table.reevaluate(always_conflicts) == []
        table.notify_node_completed(c0)  # c0 holds a lock on X
        granted = table.reevaluate(never_conflicts)
        assert [p.node for p in granted] == [c1]


class TestOwnerIndices:
    def test_locks_held_by_tree_and_node(self):
        table = LockTable()
        r1, c1 = root_and_child("T1")
        leaf = TransactionNode("T1.1.1", c1, Y, Invocation("Get"))
        r2, c2 = root_and_child("T2")
        l_c1 = table.grant(c1, X, c1.invocation)
        l_leaf = table.grant(leaf, Y, leaf.invocation)
        table.grant(c2, X, c2.invocation)
        assert table.locks_held_by_tree(r1) == [l_c1, l_leaf]
        assert table.locks_held_by_node(c1) == [l_c1]
        assert table.locks_held_by_tree(r2) != []
        table.check_invariants()

    def test_indices_consistent_across_release_and_reassign(self):
        table = LockTable()
        r1, mid = root_and_child("T1")
        leaf = TransactionNode("T1.1.1", mid, Y, Invocation("Get"))
        table.grant(mid, X, mid.invocation)
        table.grant(leaf, Y, leaf.invocation)
        table.check_invariants()
        table.reassign_locks_to_parent(mid)
        table.check_invariants()
        assert table.locks_held_by_node(r1) and not table.locks_held_by_node(mid)
        table.release_tree(r1)
        table.check_invariants()
        assert table.lock_count == 0
        assert table.locks_held_by_tree(r1) == []

    def test_release_counters(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        table = LockTable(metrics=registry)
        r1, c1 = root_and_child("T1")
        table.grant(c1, X, c1.invocation)
        table.release_tree(r1)
        table.release_subtree(c1)  # no-op but counted as an operation
        snapshot = registry.snapshot()
        assert snapshot.counter("lock.release_ops") == 2
        assert table.total_release_ops == 2


class TestRetainedProperty:
    def test_lock_becomes_retained_when_parent_commits(self):
        table = LockTable()
        root, mid = root_and_child("T1")
        leaf = TransactionNode("T1.1.1", mid, Y, Invocation("Get"))
        lock = table.grant(leaf, Y, leaf.invocation)
        assert not lock.retained  # mid still active
        mid.status = mid.status.__class__.COMMITTED
        assert lock.retained

    def test_toplevel_own_lock_never_retained(self):
        table = LockTable()
        root, __ = root_and_child("T1")
        lock = table.grant(root, Oid("Database", 0), root.invocation)
        assert not lock.retained

    def test_high_water_mark(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        l1 = table.grant(c1, X, c1.invocation)
        l2 = table.grant(c1, Y, Invocation("Get"))
        table.release_lock(l1)
        table.release_lock(l2)
        assert table.max_locks_held == 2
        assert table.lock_count == 0

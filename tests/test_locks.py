"""Unit tests for the lock table: grants, FCFS queues, release modes."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolViolation
from repro.objects.oid import Oid
from repro.runtime.scheduler import Scheduler
from repro.semantics.invocation import Invocation
from repro.txn.locks import LockTable
from repro.txn.transaction import TransactionNode

X = Oid("Atom", 1)
Y = Oid("Atom", 2)


def node(tree_id: str, parent: TransactionNode | None = None, op: str = "Op") -> TransactionNode:
    target = X
    return TransactionNode(tree_id, parent, target, Invocation(op, (tree_id,)))


def root_and_child(name: str) -> tuple[TransactionNode, TransactionNode]:
    root = TransactionNode(name, None, Oid("Database", 0), Invocation("Transaction", (name,)))
    child = TransactionNode(f"{name}.1", root, X, Invocation("Op", (name,)))
    return root, child


def never_conflicts(holder, h_inv, requester, r_inv, target):
    return None


def always_conflicts(holder, h_inv, requester, r_inv, target):
    return holder.root()


def make_signal():
    return Scheduler().create_signal()


class TestGrantAndBlock:
    def test_grant_and_inspect(self):
        table = LockTable()
        __, child = root_and_child("T1")
        lock = table.grant(child, X, child.invocation)
        assert table.locks_on(X) == (lock,)
        assert table.lock_count == 1
        assert table.total_grants == 1

    def test_compute_blockers_against_held(self):
        table = LockTable()
        r1, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")
        table.grant(c1, X, c1.invocation)
        blockers = table.compute_blockers(c2, X, c2.invocation, always_conflicts)
        assert blockers == {r1}
        assert not table.compute_blockers(c2, X, c2.invocation, never_conflicts)

    def test_blockers_include_earlier_queued_requests(self):
        """FCFS: a request conflicts with earlier queued requests too."""
        table = LockTable()
        r1, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")
        table.enqueue(c1, X, c1.invocation, make_signal())
        blockers = table.compute_blockers(c2, X, c2.invocation, always_conflicts)
        assert blockers == {r1}

    def test_before_seq_limits_queue_check(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")
        p1 = table.enqueue(c1, X, c1.invocation, make_signal())
        table.enqueue(c2, X, c2.invocation, make_signal())
        # re-testing p1 must not see the later request
        blockers = table.compute_blockers(
            c1, X, c1.invocation, always_conflicts, before_seq=p1.enqueue_seq
        )
        assert blockers == set()


class TestReevaluate:
    def test_grant_in_fcfs_order(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")

        # conflict tester: everyone conflicts with everyone else
        table.enqueue(c1, X, c1.invocation, make_signal())
        table.enqueue(c2, X, c2.invocation, make_signal())

        granted = table.reevaluate(never_conflicts)
        # With no conflicts both are granted, in FCFS order.
        assert [p.node for p in granted] == [c1, c2]
        assert table.pending_count == 0
        assert table.lock_count == 2

    def test_no_overtaking_past_conflicting_earlier_request(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        __, c2 = root_and_child("T2")
        __, blocker = root_and_child("T0")
        table.grant(blocker, X, blocker.invocation)

        def tester(holder, h_inv, requester, r_inv, target):
            # T1 conflicts with the held lock; T2 conflicts with T1 only.
            if requester is c1 and holder is blocker:
                return holder.root()
            if requester is c2 and holder is c1:
                return holder.root()
            return None

        table.enqueue(c1, X, c1.invocation, make_signal())
        table.enqueue(c2, X, c2.invocation, make_signal())
        granted = table.reevaluate(tester)
        # T1 still blocked by the held lock; T2 must not overtake T1.
        assert granted == []
        assert table.pending_count == 2

    def test_granted_signal_fires(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        signal = make_signal()
        table.enqueue(c1, X, c1.invocation, signal)
        table.reevaluate(never_conflicts)
        assert signal.done


class TestRelease:
    def test_release_tree(self):
        table = LockTable()
        r1, c1 = root_and_child("T1")
        r2, c2 = root_and_child("T2")
        table.grant(r1, Oid("Database", 0), r1.invocation)
        table.grant(c1, X, c1.invocation)
        table.grant(c2, X, c2.invocation)
        released = table.release_tree(r1)
        assert len(released) == 2
        assert table.lock_count == 1
        assert table.locks_on(X)[0].node is c2

    def test_release_descendant_locks_keeps_own(self):
        table = LockTable()
        root, mid = root_and_child("T1")
        leaf = TransactionNode("T1.1.1", mid, Y, Invocation("Get"))
        table.grant(mid, X, mid.invocation)
        table.grant(leaf, Y, leaf.invocation)
        released = table.release_descendant_locks(mid)
        assert [lk.node for lk in released] == [leaf]
        assert table.locks_on(X)[0].node is mid  # own lock kept

    def test_reassign_locks_to_parent(self):
        table = LockTable()
        root, mid = root_and_child("T1")
        leaf = TransactionNode("T1.1.1", mid, Y, Invocation("Get"))
        table.grant(leaf, Y, leaf.invocation)
        moved = table.reassign_locks_to_parent(mid)
        # the leaf's lock now belongs to mid's parent (the root)
        assert table.locks_on(Y)[0].node is root
        assert len(moved) == 1

    def test_reassign_toplevel_rejected(self):
        table = LockTable()
        root, __ = root_and_child("T1")
        with pytest.raises(ProtocolViolation):
            table.reassign_locks_to_parent(root)

    def test_release_unknown_lock_rejected(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        lock = table.grant(c1, X, c1.invocation)
        table.release_lock(lock)
        with pytest.raises(ProtocolViolation):
            table.release_lock(lock)

    def test_cancel_pending(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        pending = table.enqueue(c1, X, c1.invocation, make_signal())
        table.cancel(pending)
        assert table.pending_count == 0
        table.cancel(pending)  # idempotent


class TestRetainedProperty:
    def test_lock_becomes_retained_when_parent_commits(self):
        table = LockTable()
        root, mid = root_and_child("T1")
        leaf = TransactionNode("T1.1.1", mid, Y, Invocation("Get"))
        lock = table.grant(leaf, Y, leaf.invocation)
        assert not lock.retained  # mid still active
        mid.status = mid.status.__class__.COMMITTED
        assert lock.retained

    def test_toplevel_own_lock_never_retained(self):
        table = LockTable()
        root, __ = root_and_child("T1")
        lock = table.grant(root, Oid("Database", 0), root.invocation)
        assert not lock.retained

    def test_high_water_mark(self):
        table = LockTable()
        __, c1 = root_and_child("T1")
        l1 = table.grant(c1, X, c1.invocation)
        l2 = table.grant(c1, Y, Invocation("Get"))
        table.release_lock(l1)
        table.release_lock(l2)
        assert table.max_locks_held == 2
        assert table.lock_count == 0

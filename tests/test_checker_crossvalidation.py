"""Cross-validation of the trace-based reduction checker.

The production checker searches over Mazurkiewicz traces (collapse-only
moves on a dependence partial order).  This module implements the
*literal* sequence semantics of the paper's definition — explicit
adjacent swaps of commuting elements plus collapses of contiguous child
blocks — as an exponential brute-force reference, and checks on
exhaustively generated and hypothesis-generated small histories that
the two decisions agree.
"""

from __future__ import annotations

from typing import Optional

from hypothesis import given, settings, strategies as st

from repro.core.serializability import _Reducer, is_semantically_serializable
from repro.objects.oid import Oid
from repro.semantics.compatibility import CompatibilityMatrix
from repro.txn.history import ActionRecord, History

DB = Oid("Database", 1)
BOX = Oid("Box", 2)
ATOM_X = Oid("Atom", 3)
ATOM_Y = Oid("Atom", 4)

COMPOSITION = {DB: None, BOX: DB, ATOM_X: BOX, ATOM_Y: DB}


def box_matrix() -> CompatibilityMatrix:
    m = CompatibilityMatrix("Box", ["Add", "Read"])
    m.allow("Add", "Add")
    m.conflict("Add", "Read")
    m.allow("Read", "Read")
    return m


MATRICES = {"Box": box_matrix()}


def brute_force_serializable(history: History, node_budget: int = 600_000) -> Optional[bool]:
    """The literal sequence-based reduction, by exhaustive search.

    Returns True/False, or None if the node budget is exhausted
    (callers skip those cases).
    """
    committed = history.committed_only()
    leaves = committed.leaves()
    if not leaves:
        return True
    reducer = _Reducer(committed, MATRICES, budget=1)  # for commute() only
    records = reducer.records
    child_ids = reducer.child_ids

    initial = tuple(r.node_id for r in leaves)
    visited: set[tuple[str, ...]] = set()
    stack = [initial]
    explored = 0
    while stack:
        state = stack.pop()
        if state in visited:
            continue
        visited.add(state)
        explored += 1
        if explored > node_budget:
            return None
        if all(records[n].parent_id is None for n in state):
            return True
        # swaps of adjacent commuting elements
        for i in range(len(state) - 1):
            a, b = state[i], state[i + 1]
            if records[a].txn != records[b].txn and reducer.commute(a, b):
                stack.append(state[:i] + (b, a) + state[i + 2 :])
        # collapses of contiguous complete child blocks
        positions = {n: i for i, n in enumerate(state)}
        parents: dict[str, list[int]] = {}
        for i, n in enumerate(state):
            parent = records[n].parent_id
            if parent is not None:
                parents.setdefault(parent, []).append(i)
        for parent, indexes in parents.items():
            expected = child_ids.get(parent, ())
            if len(indexes) != len(expected):
                continue
            if {state[i] for i in indexes} != set(expected):
                continue
            low, high = min(indexes), max(indexes)
            if high - low + 1 != len(indexes):
                continue
            stack.append(state[:low] + (parent,) + state[high + 1 :])
    return False


# ---------------------------------------------------------------------------
# History generation
# ---------------------------------------------------------------------------
def build_history(shape: list[tuple[str, str, tuple]], order: list[int]) -> History:
    """Build a two-transaction history.

    ``shape[i] = (txn, op, args)`` describes leaf-bearing actions;
    ``order`` is a permutation fixing the leaves' execution order.
    Every method action ("Add"/"Read" on BOX) owns one leaf on ATOM_X;
    "direct" actions are raw leaves (bypass) on ATOM_X or ATOM_Y.
    """
    records: list[ActionRecord] = []
    seq_of = {pos: 10 * (rank + 1) for rank, pos in enumerate(order)}
    span = 10 * (len(order) + 2)
    for txn in ("T1", "T2"):
        records.append(
            ActionRecord(txn, None, txn, DB, "Transaction", (txn,), 1, span, "committed", 0)
        )
    for i, (txn, op, args) in enumerate(shape):
        begin = seq_of[i]
        if op in ("Add", "Read"):
            records.append(
                ActionRecord(f"m{i}", txn, txn, BOX, op, args, begin, begin + 5, "committed", 1)
            )
            leaf_op = "Put" if op == "Add" else "Get"
            leaf_args = ("v",) if op == "Add" else ()
            records.append(
                ActionRecord(
                    f"l{i}", f"m{i}", txn, ATOM_X, leaf_op, leaf_args, begin + 1, begin + 2, "committed", 2
                )
            )
        else:  # direct leaf access
            target = ATOM_X if op in ("Get", "Put") else ATOM_Y
            real_op = op if op in ("Get", "Put") else ("Get" if op == "GetY" else "Put")
            leaf_args = ("w",) if real_op == "Put" else ()
            records.append(
                ActionRecord(
                    f"d{i}", txn, txn, target, real_op, leaf_args, begin, begin + 1, "committed", 1
                )
            )
    return History(records=records, composition_parent=dict(COMPOSITION))


ACTION = st.tuples(
    st.sampled_from(["T1", "T2"]),
    st.sampled_from(["Add", "Read", "Get", "Put", "GetY", "PutY"]),
    st.just(()),
)


class TestCrossValidation:
    @settings(max_examples=120, deadline=None)
    @given(
        shape=st.lists(ACTION, min_size=2, max_size=5),
        data=st.data(),
    )
    def test_trace_checker_agrees_with_brute_force(self, shape, data):
        order = data.draw(st.permutations(range(len(shape))))
        history = build_history(shape, list(order))
        reference = brute_force_serializable(history)
        if reference is None:
            return  # brute force ran out of budget; skip
        result = is_semantically_serializable(history, type_matrices=MATRICES)
        assert not result.exhausted
        assert result.serializable == reference, history.format()

    def test_known_positive(self):
        # Add(T1) | Add(T2) interleaved at the leaf level: reducible.
        shape = [("T1", "Add", ()), ("T2", "Add", ()), ("T1", "Add", ())]
        history = build_history(shape, [0, 1, 2])
        assert brute_force_serializable(history) is True
        assert is_semantically_serializable(history, type_matrices=MATRICES).serializable

    def test_known_negative(self):
        # Read(T2) sandwiched between two Adds of T1: conflict cycle.
        shape = [("T1", "Add", ()), ("T2", "Read", ()), ("T1", "Add", ())]
        history = build_history(shape, [0, 1, 2])
        assert brute_force_serializable(history) is False
        result = is_semantically_serializable(history, type_matrices=MATRICES)
        assert not result.serializable
        assert not result.exhausted

    def test_bypass_negative(self):
        # T2 reads the atom directly between T1's method-level writes.
        shape = [("T1", "Add", ()), ("T2", "Get", ()), ("T1", "Add", ())]
        history = build_history(shape, [0, 1, 2])
        assert brute_force_serializable(history) is False
        assert not is_semantically_serializable(history, type_matrices=MATRICES).serializable

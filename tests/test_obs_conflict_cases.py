"""Conflict-case accounting replayed against the paper's figures.

The four-way Fig. 9 outcome counters must agree exactly with the worked
examples: Fig. 6 produces one case-1 relief, Fig. 7 one case-2 wait, and
the Fig. 5 bypass only top-level waits.  The ablation protocol (ancestor
relief disabled) must zero the case-1/case-2 counters and convert those
outcomes into top-level waits.  Baselines without an ancestor search get
the kernel's coarse binning.

Counters count conflict-*test* outcomes.  A queued request contributes
once when it blocks and once more per re-test — and the lock table only
re-tests a queue when its granted set changed or a recorded blocker
completed, so the counts stay proportional to the conflicts that
actually occur.  The numbers below pin that accounting down.
"""

from __future__ import annotations

from repro.bench import run_closed_loop
from repro.core.kernel import TransactionManager
from repro.core.protocol import SemanticLockingProtocol, SemanticNoReliefProtocol
from repro.obs import (
    CASE1_RELIEF,
    CASE2_WAIT,
    CASE_COMMUTATIVE,
    CASE_SAME_TRANSACTION,
    CASE_TOPLEVEL_WAIT,
    CONFLICT_CASES,
)
from repro.orderentry.schema import SHIPPED, build_order_entry_database
from repro.orderentry.transactions import make_t1, make_t2
from repro.orderentry.workload import WorkloadConfig
from repro.protocols.two_phase_object import ObjectRW2PLProtocol
from repro.protocols.two_phase_page import PageLockingProtocol
from repro.runtime.scheduler import Scheduler

from tests.helpers import run_programs
from tests.test_figures import _fig6_setup, _fig7_setup


def case_counts(kernel) -> dict[str, int]:
    snapshot = kernel.obs.snapshot()
    return {case: snapshot.counter(case) for case in CONFLICT_CASES}


class TestFig6Accounting:
    """Fig. 6: exactly one conflict relieved by a committed ancestor."""

    def test_semantic_counts(self):
        __, kernel = _fig6_setup(SemanticLockingProtocol())
        assert case_counts(kernel) == {
            CASE_COMMUTATIVE: 3,
            CASE_SAME_TRANSACTION: 4,
            CASE1_RELIEF: 1,
            CASE2_WAIT: 0,
            CASE_TOPLEVEL_WAIT: 0,
        }

    def test_ablation_converts_relief_into_toplevel_waits(self):
        __, kernel = _fig6_setup(SemanticNoReliefProtocol())
        counts = case_counts(kernel)
        assert counts[CASE1_RELIEF] == 0
        assert counts[CASE2_WAIT] == 0
        # T4 blocks until T1's commit: the formal conflict is counted at
        # block time and once more when T1's release dirties the object
        # and the queue is re-tested (and the wake re-tests commute).
        assert counts == {
            CASE_COMMUTATIVE: 4,
            CASE_SAME_TRANSACTION: 4,
            CASE1_RELIEF: 0,
            CASE2_WAIT: 0,
            CASE_TOPLEVEL_WAIT: 2,
        }


class TestFig7Accounting:
    """Fig. 7: one case-1 relief plus one case-2 wait on the subtxn."""

    def test_semantic_counts(self):
        __, kernel, __oid = _fig7_setup(SemanticLockingProtocol())
        assert case_counts(kernel) == {
            CASE_COMMUTATIVE: 5,
            CASE_SAME_TRANSACTION: 2,
            CASE1_RELIEF: 1,
            CASE2_WAIT: 1,
            CASE_TOPLEVEL_WAIT: 0,
        }

    def test_ablation_counts(self):
        __, kernel, __oid = _fig7_setup(SemanticNoReliefProtocol())
        assert case_counts(kernel) == {
            CASE_COMMUTATIVE: 5,
            CASE_SAME_TRANSACTION: 2,
            CASE1_RELIEF: 0,
            CASE2_WAIT: 0,
            CASE_TOPLEVEL_WAIT: 2,
        }


def _fig5_setup(protocol):
    """T3 bypasses encapsulation into an order T1 holds a retained lock on."""
    built = build_order_entry_database(n_items=2, orders_per_item=1)
    scheduler = Scheduler()
    kernel = TransactionManager(built.db, protocol=protocol, scheduler=scheduler)
    gate = scheduler.create_signal("after-first-ship")

    def probe(node, phase):
        if (
            phase == "post"
            and node.invocation.operation == "ShipOrder"
            and node.top_level_name == "T1"
            and not gate.done
        ):
            gate.fire()
        return None

    kernel.probe = probe

    async def t3(tx):
        await gate
        first = await tx.call(built.order(0, 0), "TestStatus", SHIPPED)
        second = await tx.call(built.order(1, 0), "TestStatus", SHIPPED)
        return (first, second)

    kernel.spawn("T1", make_t1(built.item(0), 1, built.item(1), 1))
    kernel.spawn("T3", t3)
    kernel.run()
    return kernel


class TestFig5Accounting:
    """Fig. 5 bypassing: no commutative ancestors, only top-level waits."""

    def test_bypass_conflicts_are_all_toplevel(self):
        kernel = _fig5_setup(SemanticLockingProtocol())
        counts = case_counts(kernel)
        assert counts[CASE1_RELIEF] == 0
        assert counts[CASE2_WAIT] == 0
        assert counts == {
            CASE_COMMUTATIVE: 1,
            CASE_SAME_TRANSACTION: 4,
            CASE1_RELIEF: 0,
            CASE2_WAIT: 0,
            CASE_TOPLEVEL_WAIT: 2,
        }

    def test_relief_cannot_help_a_bypass(self):
        """The ancestor search finds only the root pair either way, so
        the ablation changes nothing about this scenario."""
        assert case_counts(_fig5_setup(SemanticNoReliefProtocol())) == case_counts(
            _fig5_setup(SemanticLockingProtocol())
        )


class TestCoarseBinning:
    """Baselines have no ancestor search; the kernel bins coarsely."""

    def run_fig4(self, protocol):
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        return run_programs(
            built.db,
            {
                "T1": make_t1(built.item(0), 1, built.item(1), 2),
                "T2": make_t2(built.item(0), 1, built.item(1), 2),
            },
            protocol=protocol,
        )

    def test_baselines_never_report_fine_cases(self):
        for protocol in (PageLockingProtocol(), ObjectRW2PLProtocol()):
            assert not type(protocol).reports_conflict_cases
            counts = case_counts(self.run_fig4(protocol))
            assert counts[CASE1_RELIEF] == 0
            assert counts[CASE_SAME_TRANSACTION] == 0  # coarse: not tracked
            assert counts[CASE_COMMUTATIVE] > 0
            assert counts[CASE_TOPLEVEL_WAIT] > 0

    def test_semantic_protocol_reports_fine_cases(self):
        assert SemanticLockingProtocol.reports_conflict_cases
        assert SemanticNoReliefProtocol.reports_conflict_cases


class TestClosedLoopBreakdown:
    """The ISSUE acceptance criterion, as a regression test: a standard
    closed-loop run exercises all four outcomes, and the ablation zeroes
    exactly the two relief-dependent ones."""

    CONFIG = WorkloadConfig(n_items=2, orders_per_item=3, seed=11)

    def test_semantic_run_hits_all_four_outcomes(self):
        metrics = run_closed_loop(
            SemanticLockingProtocol, self.CONFIG, n_transactions=40, mpl=6
        )
        assert metrics.commutative_grants > 0
        assert metrics.case1_reliefs > 0
        assert metrics.case2_waits > 0
        assert metrics.toplevel_waits > 0

    def test_ablation_zeroes_relief_cases_only(self):
        metrics = run_closed_loop(
            SemanticNoReliefProtocol, self.CONFIG, n_transactions=40, mpl=6
        )
        assert metrics.case1_reliefs == 0
        assert metrics.case2_waits == 0
        assert metrics.commutative_grants > 0
        assert metrics.toplevel_waits > 0

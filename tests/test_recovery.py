"""Tests for multi-level crash recovery (WAL + redo + logical undo)."""

from __future__ import annotations

import pytest

from repro.core.kernel import TransactionManager, run_transactions
from repro.objects.atoms import AtomicObject
from repro.objects.sets import SetObject
from repro.orderentry.schema import (
    ITEM_TYPE,
    ORDER_TYPE,
    build_order_entry_database,
)
from repro.orderentry.transactions import make_new_order_txn, make_t1, make_t2
from repro.recovery import (
    WriteAheadLog,
    address_of,
    rebuild_snapshot,
    recover,
    resolve_address,
    snapshot,
)
from repro.recovery.wal import SubtxnCommitRecord, TxnStatusRecord, UpdateRecord
from repro.runtime.scheduler import Scheduler

TYPE_SPECS = {"Item": ITEM_TYPE, "Order": ORDER_TYPE}


def snapshot_state(db, exclude=("NextOrderNo",)):
    """Comparable state by logical path; order-number counters excluded
    (compensation deliberately does not reuse order numbers)."""
    state = {}
    for obj in db.subtree():
        if isinstance(obj, AtomicObject) and obj.name not in exclude:
            state[obj.path] = obj.raw_get()
        elif isinstance(obj, SetObject):
            state[obj.path + "/keys"] = tuple(sorted(str(k) for k, __ in obj.raw_scan()))
    return state


class TestAddresses:
    def test_roundtrip_all_objects(self, order_entry):
        for obj in order_entry.db.subtree():
            if obj is order_entry.db:
                continue
            address = address_of(obj)
            assert resolve_address(order_entry.db, address) is obj

    def test_snapshot_rebuild_order(self, order_entry):
        order = order_entry.order(0, 0)
        description = snapshot(order)
        rebuilt = rebuild_snapshot(order_entry.db, description, TYPE_SPECS)
        assert rebuilt.spec is ORDER_TYPE
        assert rebuilt.impl_component("OrderNo").raw_get() == 1
        assert rebuilt.impl_component("Status").raw_get().events == frozenset()

    def test_rebuild_unknown_spec_rejected(self, order_entry):
        from repro.errors import UnknownObjectError

        description = snapshot(order_entry.order(0, 0))
        with pytest.raises(UnknownObjectError):
            rebuild_snapshot(order_entry.db, description, {})


class TestWalContent:
    def run_logged(self, programs, builder=None, max_steps=None):
        built = (builder or (lambda: build_order_entry_database(2, 2)))()
        wal = WriteAheadLog()
        kernel = TransactionManager(built.db, scheduler=Scheduler(), wal=wal)
        for name, factory in programs(built).items():
            kernel.spawn(name, factory)
        finished = kernel.scheduler.run(max_steps=max_steps)
        if not finished:
            kernel.scheduler.shutdown()
        return built, wal, kernel

    @staticmethod
    def ship_pay(built):
        return {
            "T1": make_t1(built.item(0), 1, built.item(1), 2),
            "T2": make_t2(built.item(0), 1, built.item(1), 2),
        }

    def test_commit_records_present(self):
        __, wal, __k = self.run_logged(self.ship_pay)
        statuses = [r for r in wal if isinstance(r, TxnStatusRecord)]
        assert [r.status for r in statuses if r.txn == "T1"] == ["begin", "commit"]
        assert wal.status_of("T1") == "commit"

    def test_subtxn_commits_carry_inverses(self):
        __, wal, __k = self.run_logged(self.ship_pay)
        ships = [
            r
            for r in wal
            if isinstance(r, SubtxnCommitRecord) and r.operation == "ShipOrder"
        ]
        assert len(ships) == 2
        assert all(r.inverse_operation == "UnshipOrder" for r in ships)
        assert all(r.subtree_ids for r in ships)

    def test_readonly_methods_not_logged(self):
        def progs(built):
            async def t5(tx):
                return await tx.call(built.item(0), "TotalPayment")

            return {"T5": t5}

        __, wal, __k = self.run_logged(progs)
        assert not [r for r in wal if isinstance(r, SubtxnCommitRecord)]
        assert not [r for r in wal if isinstance(r, UpdateRecord)]

    def test_insert_logs_member_snapshot(self):
        def progs(built):
            return {"N": make_new_order_txn(built.item(0), 700, 2)}

        __, wal, __k = self.run_logged(progs)
        inserts = [
            r for r in wal if isinstance(r, UpdateRecord) and r.operation == "Insert"
        ]
        assert len(inserts) == 1
        assert inserts[0].member_snapshot is not None
        assert inserts[0].member_snapshot["kind"] == "encapsulated"

    def test_detached_object_changes_not_logged(self):
        """NewOrder initialises atoms of the order before inserting it;
        those changes live inside the Insert snapshot, not as records."""

        def progs(built):
            return {"N": make_new_order_txn(built.item(0), 700, 2)}

        __, wal, __k = self.run_logged(progs)
        puts = [r for r in wal if isinstance(r, UpdateRecord) and r.operation == "Put"]
        # only the NextOrderNo counter update is an attached Put
        assert len(puts) == 1

    def test_status_of_in_flight(self):
        __, wal, __k = self.run_logged(self.ship_pay, max_steps=12)
        assert "in-flight" in {wal.status_of(t) for t in wal.transactions()}

    def test_save_load_roundtrip(self, tmp_path):
        __, wal, __k = self.run_logged(self.ship_pay)
        path = str(tmp_path / "wal.pickle")
        wal.save(path)
        loaded = WriteAheadLog.load(path)
        assert len(loaded) == len(wal)
        assert loaded.status_of("T2") == "commit"


def run_crash(programs_factory, builder, max_steps):
    built = builder()
    wal = WriteAheadLog()
    kernel = TransactionManager(built.db, scheduler=Scheduler(), wal=wal)
    for name, program in programs_factory(built).items():
        kernel.spawn(name, program)
    finished = kernel.scheduler.run(max_steps=max_steps)
    if not finished:
        kernel.scheduler.shutdown()
    return built, wal, kernel


class TestRecovery:
    BUILDER = staticmethod(lambda: build_order_entry_database(2, 2))

    @staticmethod
    def programs(built):
        return {
            "T1": make_t1(built.item(0), 1, built.item(1), 2),
            "T2": make_t2(built.item(0), 1, built.item(1), 2),
            "N1": make_new_order_txn(built.item(0), 777, 3),
        }

    def oracle(self, winners):
        fresh = self.BUILDER()
        programs = self.programs(fresh)
        for winner in winners:
            run_transactions(fresh.db, {winner: programs[winner]})
        return snapshot_state(fresh.db)

    def test_recovery_of_complete_run_reproduces_state(self):
        built, wal, __ = run_crash(self.programs, self.BUILDER, None)
        restored = self.BUILDER()
        report = recover(restored.db, wal, TYPE_SPECS)
        assert not report.losers
        assert snapshot_state(restored.db) == snapshot_state(built.db)
        assert report.redone == sum(isinstance(r, UpdateRecord) for r in wal)

    @pytest.mark.parametrize("crash_at", range(0, 140, 5))
    def test_crash_point_sweep(self, crash_at):
        """At every crash point: recovered state == serial execution of
        exactly the durably-committed transactions."""
        built, wal, __ = run_crash(self.programs, self.BUILDER, crash_at)
        restored = self.BUILDER()
        report = recover(restored.db, wal, TYPE_SPECS)
        winners = [
            r.txn
            for r in wal
            if isinstance(r, TxnStatusRecord) and r.status == "commit"
        ]
        assert snapshot_state(restored.db) == self.oracle(winners), report

    def test_loser_new_order_disappears(self):
        """Crash right after NewOrder's subtransaction committed but
        before N1's top-level commit: recovery cancels the order."""
        def programs(built):
            async def n1(tx):
                order_no = await tx.call(built.item(0), "NewOrder", 777, 3)
                for __ in range(20):
                    await tx.pause()  # a wide window before the commit
                return order_no

            return {"N1": n1}

        found = False
        for crash_at in range(4, 40, 2):
            built, wal, __ = run_crash(programs, self.BUILDER, crash_at)
            n1_inserts = [
                r
                for r in wal
                if isinstance(r, UpdateRecord)
                and r.txn == "N1"
                and r.operation == "Insert"
            ]
            if n1_inserts and wal.status_of("N1") == "in-flight":
                found = True
                restored = self.BUILDER()
                report = recover(restored.db, wal, TYPE_SPECS)
                orders = restored.item(0).impl_component("Orders")
                assert orders.raw_size() == 2  # the pre-existing orders only
                assert report.compensated >= 1
        assert found, "no crash point hit the committed-subtxn window"

    def test_crash_during_abort_completes_the_abort(self):
        """A transaction that aborted in-flight (compensations partially
        logged, no abort record) is finished off by recovery."""
        def programs(built):
            async def doomed(tx):
                await tx.call(built.item(0), "PayOrder", 1)
                tx.abort("business rule")

            return {"D": doomed}

        # sweep crash points through the abort path
        for crash_at in range(5, 60, 2):
            built, wal, __ = run_crash(programs, self.BUILDER, crash_at)
            if wal.status_of("D") != "in-flight":
                continue
            restored = self.BUILDER()
            recover(restored.db, wal, TYPE_SPECS)
            status = restored.status_atom(0, 0).raw_get()
            assert "paid" not in status, f"crash@{crash_at}"
        # and the completed abort also recovers clean
        built, wal, __ = run_crash(programs, self.BUILDER, None)
        assert wal.status_of("D") == "abort"
        restored = self.BUILDER()
        report = recover(restored.db, wal, TYPE_SPECS)
        assert "paid" not in restored.status_atom(0, 0).raw_get()
        assert not report.losers

    def test_report_string(self):
        built, wal, __ = run_crash(self.programs, self.BUILDER, 40)
        restored = self.BUILDER()
        report = recover(restored.db, wal, TYPE_SPECS)
        text = str(report)
        assert "recovery:" in text and "redone" in text

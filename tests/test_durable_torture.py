"""Real-process crash torture and the durable storage round trip.

These tests launch actual child processes, SIGKILL them at injected
crash points, and recover from the files they leave behind — the
closest this repo gets to pulling the power cord.  Kept small here
(a handful of points, two seeds); CI's durability-smoke job and the
nightly sweep run the full grids via ``repro torture --durable``.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.faults.durable import (
    CHILD_POOL_CAPACITY,
    WAL_FILENAME,
    database_digest,
    run_durable_torture,
)
from repro.obs import MetricsRegistry
from repro.recovery import recover
from repro.storage.durable import (
    DurableStorageManager,
    DurableWriteAheadLog,
    load_wal_file,
)


class TestForkSweep:
    def test_small_sweep_all_points_pass(self):
        report = run_durable_torture(
            seed=0, n_transactions=3, steps=8, wal_sweep=True, mode="fork"
        )
        assert report.durable
        assert report.all_ok, report.summary()
        # every crashing point was a real process death
        assert report.process_kills == report.crash_points > 0
        crashed = [o for o in report.outcomes if o.crashed]
        assert all(o.process_killed for o in crashed)
        # the sweep crossed both loser and winner regimes
        assert any(o.losers for o in crashed)
        assert any(o.winners for o in crashed)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown child mode"):
            run_durable_torture(mode="thread")

    def test_workdir_keeps_files(self, tmp_path):
        report = run_durable_torture(
            seed=1,
            n_transactions=2,
            steps=1,
            wal_sweep=False,
            workdir=str(tmp_path),
            mode="fork",
        )
        assert report.all_ok
        point_dirs = sorted(os.listdir(tmp_path))
        assert point_dirs == ["step-0"]
        survivor = os.path.join(tmp_path, "step-0", WAL_FILENAME)
        assert os.path.exists(survivor)
        assert not load_wal_file(survivor).torn or True  # readable either way


@pytest.mark.slow
class TestSpawnSweep:
    def test_spawn_mode_single_point(self):
        """One cold-interpreter child proves the subprocess entry point."""
        report = run_durable_torture(
            seed=2, n_transactions=2, steps=2, wal_sweep=False, mode="spawn"
        )
        assert report.all_ok, report.summary()
        assert report.process_kills >= 1


class TestRecoveryDeterminism:
    """Same seed + same kill point => bit-identical recovery, twice."""

    def _crash_and_recover(self, workdir: str) -> tuple[str, dict]:
        report = run_durable_torture(
            seed=3,
            n_transactions=3,
            steps=None,
            step_stride=10_000,  # exactly one step point: step 0 ...
            wal_sweep=False,
            workdir=workdir,
            mode="fork",
        )
        assert report.all_ok
        # ... but recover here ourselves, with a metrics registry, from
        # the surviving file of a *later* fixed point we create now:
        from repro.faults.durable import _protocol_factory, _run_child
        from repro.faults.torture import order_entry_scenario

        point_dir = os.path.join(workdir, "fixed-point")
        os.makedirs(point_dir, exist_ok=True)
        config = {
            "seed": 3,
            "n_transactions": 3,
            "n_items": 2,
            "orders_per_item": 2,
            "protocol": "semantic",
            "policy": "fifo",
            "kind": "step",
            "at": 17,
            "point_dir": point_dir,
            "gc_window": 0.0,
        }
        killed = _run_child(config, "fork", 60.0)
        assert killed
        scan = load_wal_file(os.path.join(point_dir, WAL_FILENAME))
        scenario = order_entry_scenario(
            seed=3, n_transactions=3, n_items=2, orders_per_item=2,
            protocol=_protocol_factory("semantic"),
        )
        restored, __ = scenario.instantiate()
        metrics = MetricsRegistry()
        recover(restored, scan.log, scenario.type_specs, metrics=metrics)
        counts = {
            name: value
            for name, value in metrics.snapshot().counters.items()
            if name.startswith("recovery.")
        }
        return database_digest(restored, scenario.exclude_paths), counts

    def test_two_independent_runs_identical(self, tmp_path):
        digest_a, counts_a = self._crash_and_recover(str(tmp_path / "a"))
        digest_b, counts_b = self._crash_and_recover(str(tmp_path / "b"))
        assert digest_a == digest_b
        assert counts_a == counts_b
        assert counts_a.get("recovery.runs") == 1
        assert counts_a.get("recovery.redone", 0) > 0


class TestDurableStorageRoundTrip:
    def test_adopt_persist_reopen(self, tmp_path):
        """The record map survives process-free reopen, byte for byte."""
        from repro.orderentry.schema import build_order_entry_database

        built = build_order_entry_database(n_items=2, orders_per_item=2)
        wal = DurableWriteAheadLog(str(tmp_path / "wal.log"))
        durable = DurableStorageManager.adopt(
            built.db.storage, str(tmp_path / "store"), wal=wal,
            pool_capacity=CHILD_POOL_CAPACITY,
        )
        original = {
            oid: (rid.page_no, rid.slot) for oid, rid in durable._record_of.items()
        }
        durable.close()
        wal.close()

        reopened, report = DurableStorageManager.open(str(tmp_path / "store"))
        reopened.pagefile.close()
        assert report.torn_pages == []
        assert report.records == len(original)
        rebuilt = {
            oid: (rid.page_no, rid.slot) for oid, rid in reopened._record_of.items()
        }
        assert rebuilt == original

    def test_torn_page_detected_on_reopen(self, tmp_path):
        from repro.objects.oid import Oid

        wal = DurableWriteAheadLog(str(tmp_path / "wal.log"))
        durable = DurableStorageManager(str(tmp_path / "store"), wal=wal)
        for n in range(3):
            durable.allocate(Oid("Atom", n))
        durable.close()
        wal.close()

        pages_path = os.path.join(str(tmp_path / "store"), "pages.db")
        size = os.path.getsize(pages_path)
        with open(pages_path, "r+b") as fh:  # corrupt page 0's payload bytes
            fh.seek(size - 4096 + 8)  # past the file header + block frame
            fh.write(b"\xde\xad\xbe\xef" * 4)
        reopened, report = DurableStorageManager.open(str(tmp_path / "store"))
        reopened.pagefile.close()
        assert report.torn_pages == [0]
        assert report.records == 0  # torn content is the WAL's job to restore

    def test_page_images_round_trip_slot_directory(self, tmp_path):
        from repro.objects.oid import Oid

        durable = DurableStorageManager(
            str(tmp_path / "store"), records_per_page=2, pool_capacity=2
        )
        oids = [Oid("Atom", n) for n in range(5)]
        for oid in oids:
            durable.allocate(oid)
        durable.release(oids[2])
        durable.close()

        images, torn = durable.pagefile.__class__(
            os.path.join(str(tmp_path / "store"), "pages.db")
        ).scan()
        assert torn == []
        decoded = pickle.loads(images[1])
        assert decoded["capacity"] == 2
        assert decoded["slots"][0] is None  # released slot persisted as free

"""Tests for bounded scheduler runs (crash simulation) and shutdown."""

from __future__ import annotations

import warnings

from repro.runtime.scheduler import Pause, Scheduler, Task


def make_worker(log, name, steps=5):
    async def body():
        for i in range(steps):
            log.append(f"{name}{i}")
            await Pause()
        return name

    return body


class TestMaxSteps:
    def test_unbounded_returns_true(self):
        sched = Scheduler()
        log: list[str] = []
        sched.spawn("a", make_worker(log, "a")())
        assert sched.run() is True

    def test_bounded_stops_early(self):
        sched = Scheduler()
        log: list[str] = []
        sched.spawn("a", make_worker(log, "a", steps=10)())
        assert sched.run(max_steps=3) is False
        assert len(log) == 3
        sched.shutdown()

    def test_bounded_run_can_resume(self):
        sched = Scheduler()
        log: list[str] = []
        task = sched.spawn("a", make_worker(log, "a", steps=6)())
        assert sched.run(max_steps=2) is False
        assert sched.run() is True  # resume to completion
        assert task.result == "a"
        assert len(log) == 6

    def test_zero_budget_runs_nothing(self):
        sched = Scheduler()
        log: list[str] = []
        sched.spawn("a", make_worker(log, "a")())
        assert sched.run(max_steps=0) is False
        assert log == []
        sched.shutdown()


class TestShutdown:
    def test_shutdown_closes_unfinished(self):
        sched = Scheduler()
        log: list[str] = []
        task = sched.spawn("a", make_worker(log, "a", steps=10)())
        sched.run(max_steps=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # unawaited-coroutine warns -> error
            sched.shutdown()
            del task
        assert all(t.finished for t in sched.tasks.values())

    def test_shutdown_keeps_finished_results(self):
        sched = Scheduler()
        log: list[str] = []
        task = sched.spawn("a", make_worker(log, "a", steps=1)())
        sched.run()
        sched.shutdown()
        assert task.state == Task.DONE
        assert task.result == "a"

"""Tests for the benchmark harness: metrics, closed loop, reporting."""

from __future__ import annotations

import pytest

from repro.bench.harness import DEFAULT_COST_MODEL, run_closed_loop, sweep_protocols
from repro.bench.metrics import RunMetrics, aggregate
from repro.bench.report import format_markdown_table, format_table
from repro.core.protocol import SemanticLockingProtocol
from repro.orderentry.workload import WorkloadConfig
from repro.protocols.two_phase_object import ObjectRW2PLProtocol


class TestRunMetrics:
    def test_derived_rates(self):
        metrics = RunMetrics(
            protocol="p",
            committed=10,
            aborted=2,
            blocks=5,
            actions=50,
            clock=100.0,
            total_response=200.0,
        )
        assert metrics.throughput == pytest.approx(0.1)
        assert metrics.mean_response == pytest.approx(20.0)
        assert metrics.blocking_rate == pytest.approx(0.1)
        assert metrics.abort_rate == pytest.approx(2 / 12)

    def test_zero_guards(self):
        metrics = RunMetrics(protocol="p")
        assert metrics.throughput == 0.0
        assert metrics.mean_response == 0.0
        assert metrics.blocking_rate == 0.0
        assert metrics.abort_rate == 0.0

    def test_row_keys(self):
        row = RunMetrics(protocol="p").row()
        assert row["protocol"] == "p"
        assert "throughput" in row and "block_rate" in row
        assert "ct_per_rel" in row

    def test_conflict_tests_per_release(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("lock.conflict_tests").inc(12)
        registry.counter("lock.release_ops").inc(4)
        metrics = RunMetrics(protocol="p", snapshot=registry.snapshot())
        assert metrics.conflict_tests == 12
        assert metrics.release_ops == 4
        assert metrics.conflict_tests_per_release == pytest.approx(3.0)

    def test_conflict_tests_per_release_without_snapshot(self):
        assert RunMetrics(protocol="p").conflict_tests_per_release == 0.0

    def test_aggregate(self):
        a = RunMetrics(protocol="p", committed=3, clock=10.0, max_locks_held=5)
        b = RunMetrics(protocol="p", committed=7, clock=30.0, max_locks_held=9)
        total = aggregate([a, b])
        assert total.committed == 10
        assert total.clock == 40.0
        assert total.max_locks_held == 9

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])


class TestClosedLoop:
    def test_all_transactions_finish(self):
        metrics = run_closed_loop(
            SemanticLockingProtocol,
            WorkloadConfig(n_items=2, orders_per_item=2, seed=9),
            n_transactions=10,
            mpl=3,
        )
        assert metrics.committed >= 1
        assert metrics.clock > 0
        assert metrics.protocol == "semantic"

    def test_deterministic_given_seed(self):
        def run():
            return run_closed_loop(
                SemanticLockingProtocol,
                WorkloadConfig(n_items=2, orders_per_item=2, seed=13),
                n_transactions=8,
                mpl=2,
            )

        first, second = run(), run()
        assert first.committed == second.committed
        assert first.clock == second.clock
        assert first.blocks == second.blocks

    def test_identical_stream_across_protocols(self):
        """Different protocols must see the same transaction stream."""
        results = {}
        for factory in (SemanticLockingProtocol, ObjectRW2PLProtocol):
            metrics = run_closed_loop(
                factory,
                WorkloadConfig(n_items=3, orders_per_item=2, seed=17),
                n_transactions=8,
                mpl=1,  # serial: outcomes must coincide exactly
            )
            results[metrics.protocol] = metrics
        assert results["semantic"].committed == results["object-rw-2pl"].committed

    def test_cost_model_drives_clock(self):
        cheap = run_closed_loop(
            SemanticLockingProtocol,
            WorkloadConfig(n_items=2, seed=1),
            n_transactions=5,
            mpl=1,
            cost_model=DEFAULT_COST_MODEL,
        )
        from repro.core.kernel import CostModel

        expensive = run_closed_loop(
            SemanticLockingProtocol,
            WorkloadConfig(n_items=2, seed=1),
            n_transactions=5,
            mpl=1,
            cost_model=CostModel(generic_op=10.0, method_op=5.0, transaction_setup=10.0),
        )
        assert expensive.clock > cheap.clock


class TestSweep:
    def test_sweep_shapes(self):
        results = sweep_protocols(
            {"semantic": SemanticLockingProtocol},
            config_factory=lambda v: WorkloadConfig(n_items=v, orders_per_item=2, seed=v),
            values=[1, 2],
            n_transactions=6,
        )
        assert set(results) == {"semantic"}
        assert len(results["semantic"]) == 2


class TestReport:
    ROWS = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]

    def test_format_table(self):
        text = format_table(self.ROWS, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in text

    def test_format_table_empty(self):
        assert format_table([], title="t") == "t"

    def test_markdown_table(self):
        text = format_markdown_table(self.ROWS, title="t")
        assert text.startswith("**t**")
        assert "| a | b |" in text
        assert "| 22 | yy |" in text

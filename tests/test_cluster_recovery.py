"""Shard crash/recovery: real SIGKILLs through the torture harness.

The full nine-site sweep is the CI gauntlet (``repro torture
--cluster``); here we pin the most load-bearing crash points.
Killing after the branch committed locally but before any decision
arrived forces the restarted shard to resolve the in-doubt gtid against
the coordinator log and compensate under presumed abort.  Killing
between the fsynced abort decision and the compensation commit lands in
the window where the gtid is *not* in doubt (the decision record
exists) yet the branch still stands — boot must re-run the compensation
from the decision record.
"""

from __future__ import annotations

from repro.faults.cluster import CRASH_SITES, run_cluster_torture


def test_kill_after_branch_commit_recovers_in_doubt(tmp_path):
    report = run_cluster_torture(
        seed=0,
        n_requests=24,
        n_shards=2,
        sites=("2pc-branch-committed",),
        victims=(0,),
        workdir=str(tmp_path),
    )
    assert report.planned_points == 1 and not report.truncated
    outcome = report.outcomes[0]
    assert outcome.crashed and outcome.process_killed, outcome.__dict__
    assert outcome.marker_site == "2pc-branch-committed"
    assert not outcome.lost_committed
    assert not outcome.dangling_branches
    assert all(outcome.state_ok), outcome.state_ok
    # The restarted shard answered the post-recovery probes.
    assert outcome.acked_ok >= 1
    assert report.all_ok


def test_kill_between_abort_decision_and_compensation_commit(tmp_path):
    # The decision record already exists, so the gtid is not in doubt;
    # recovery must still re-run the compensation or the locally
    # committed branch survives a global abort.
    report = run_cluster_torture(
        seed=0,
        n_requests=24,
        n_shards=2,
        sites=("2pc-abort-logged",),
        victims=(0,),
        workdir=str(tmp_path),
    )
    assert report.planned_points == 1 and not report.truncated
    outcome = report.outcomes[0]
    assert outcome.crashed and outcome.process_killed, outcome.__dict__
    assert outcome.marker_site == "2pc-abort-logged"
    assert not outcome.lost_committed
    assert not outcome.dangling_branches
    assert all(outcome.state_ok), outcome.state_ok
    assert report.all_ok


def test_kill_after_ack_logged_recovers_and_reannounces(tmp_path):
    # Crashing right after the durable ack record exercises the newest
    # window: the decision and ack are durable on the shard while the
    # reply never reached the router, so the coordinator entry stays
    # alive until the restarted shard's boot-time 2pc-ack announcement
    # covers it — with compaction running live (threshold 4 in the
    # harness), so truncation happens under the same workload.
    report = run_cluster_torture(
        seed=0,
        n_requests=24,
        n_shards=2,
        sites=("2pc-ack-logged",),
        victims=(0,),
        workdir=str(tmp_path),
    )
    assert report.planned_points == 1 and not report.truncated
    outcome = report.outcomes[0]
    assert outcome.crashed and outcome.process_killed, outcome.__dict__
    assert outcome.marker_site == "2pc-ack-logged"
    assert not outcome.lost_committed
    assert not outcome.dangling_branches
    assert all(outcome.state_ok), outcome.state_ok
    assert report.all_ok


def test_crash_sites_cover_the_whole_2pc_lifecycle():
    # The sweep must bracket every durable transition: intent, local
    # commit, decision arrival, decision durability, abort durability,
    # compensation, and the durable decision ack.
    assert CRASH_SITES == (
        "2pc-prepare-received",
        "2pc-prepare-logged",
        "2pc-branch-committed",
        "2pc-commit-received",
        "2pc-decision-logged",
        "2pc-abort-received",
        "2pc-abort-logged",
        "2pc-compensated",
        "2pc-ack-logged",
    )

"""The docs link checker: passes on the repo, catches planted breakage."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs_links.py"

spec = importlib.util.spec_from_file_location("check_docs_links", CHECKER)
checker = importlib.util.module_from_spec(spec)
spec.loader.exec_module(checker)


def test_repo_docs_have_no_dead_links(capsys):
    assert checker.main([]) == 0
    out = capsys.readouterr().out
    assert "all intra-repo links ok" in out


def test_checker_runs_as_a_script():
    result = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_detects_missing_file(tmp_path, capsys):
    doc = tmp_path / "doc.md"
    doc.write_text("see [the plan](no-such-file.md) for details\n")
    assert checker.main([str(doc)]) == 1
    assert "no-such-file.md" in capsys.readouterr().out


def test_detects_missing_anchor(tmp_path, capsys):
    target = tmp_path / "target.md"
    target.write_text("# Real Heading\n\nbody\n")
    doc = tmp_path / "doc.md"
    doc.write_text("[jump](target.md#fake-heading)\n")
    assert checker.main([str(doc)]) == 1
    assert "fake-heading" in capsys.readouterr().out


def test_accepts_valid_anchor_and_same_file_anchor(tmp_path, capsys):
    target = tmp_path / "target.md"
    target.write_text("## The Command Line\n")
    doc = tmp_path / "doc.md"
    doc.write_text(
        "# Top\n"
        "[ok](target.md#the-command-line) and [self](#top)\n"
    )
    assert checker.main([str(doc)]) == 0


def test_ignores_external_links_and_code_blocks(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[ext](https://example.com/nowhere)\n"
        "```\n"
        "[fake](missing-inside-fence.md)\n"
        "```\n"
        "and `[inline](missing-inline.md)` code\n"
    )
    assert checker.main([str(doc)]) == 0


def test_detects_backticked_path_to_missing_file(tmp_path, capsys):
    doc = tmp_path / "doc.md"
    doc.write_text("the router lives in `src/repro/cluster/renamed_away.py` now\n")
    assert checker.main([str(doc)]) == 1
    assert "renamed_away.py" in capsys.readouterr().out


def test_accepts_real_code_paths_in_both_spellings(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "see `src/repro/cluster/router.py` and the module-style\n"
        "`repro/cluster/participant.py`, plus `docs/CLUSTER.md`\n"
    )
    assert checker.main([str(doc)]) == 0


def test_ignores_non_path_code_spans(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "`wal.log` and `store/pages.db` are data files; `a/*.py` is a\n"
        "glob; `repro.cluster.shard` is a module; `src/<pkg>/x.py` is a\n"
        "placeholder; `../escape/x.py` is relative; and fences hide\n"
        "```\n"
        "`src/repro/not/checked/in/fence.py`\n"
        "```\n"
    )
    assert checker.main([str(doc)]) == 0


def test_directory_argument_recurses(tmp_path, capsys):
    sub = tmp_path / "docs"
    sub.mkdir()
    (sub / "a.md").write_text("[bad](../gone.md)\n")
    assert checker.main([str(tmp_path)]) == 1
    assert "gone.md" in capsys.readouterr().out

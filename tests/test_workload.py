"""Tests for the order-entry workload generator."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.orderentry.workload import OrderEntryWorkload, WorkloadConfig

from tests.helpers import run_programs


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_rejects_empty_database(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_items=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(orders_per_item=0)

    def test_rejects_empty_mix(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(mix={})
        with pytest.raises(WorkloadError):
            WorkloadConfig(mix={"T1": 0.0})

    def test_rejects_unknown_types(self):
        with pytest.raises(WorkloadError, match="unknown transaction types"):
            WorkloadConfig(mix={"T9": 1.0})


class TestGeneration:
    def test_deterministic_stream(self):
        def names(seed):
            wl = OrderEntryWorkload(WorkloadConfig(seed=seed))
            return [name for name, __ in wl.take(20)]

        assert names(3) == names(3)
        assert names(3) != names(4)

    def test_names_follow_mix(self):
        wl = OrderEntryWorkload(WorkloadConfig(mix={"T5": 1.0}, seed=0))
        names = [name for name, __ in wl.take(5)]
        assert all(name.startswith("T5-") for name in names)

    def test_mix_with_order_entry_type(self):
        wl = OrderEntryWorkload(WorkloadConfig(mix={"T0": 1.0}, seed=0))
        name, program = wl.next_transaction()
        assert name.startswith("T0-")
        kernel = run_programs(wl.db, {name: program})
        assert kernel.handles[name].committed

    def test_generated_transactions_run(self):
        wl = OrderEntryWorkload(WorkloadConfig(seed=1, n_items=3, orders_per_item=2))
        batch = dict(wl.take(8))
        kernel = run_programs(wl.db, batch, policy="random", seed=1)
        finished = sum(
            1 for h in kernel.handles.values() if h.committed or h.aborted
        )
        assert finished == 8
        assert kernel.metrics.commits >= 1

    def test_single_item_maximum_contention(self):
        wl = OrderEntryWorkload(WorkloadConfig(n_items=1, seed=2))
        batch = dict(wl.take(5))
        kernel = run_programs(wl.db, batch, policy="random", seed=2)
        assert kernel.metrics.commits + kernel.metrics.aborts == 5

    def test_iterator_protocol(self):
        wl = OrderEntryWorkload(WorkloadConfig(seed=0))
        stream = iter(wl)
        first = next(stream)
        second = next(stream)
        assert first[0] != second[0]

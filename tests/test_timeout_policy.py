"""Lock-wait timeouts: the fourth deadlock policy, plus injected timers.

``deadlock_policy="timeout"`` arms a virtual-clock timer on every
blocking lock wait; expiry resolves the waiter through the existing
victim machinery (restart the blocked subtransaction if possible, abort
with :class:`LockTimeout` otherwise).  A `lock-wait` fault spec arms the
same timer under any policy.
"""

from __future__ import annotations

import pytest

from repro.core.kernel import TransactionManager, run_transactions
from repro.core.serializability import is_semantically_serializable
from repro.errors import LockTimeout
from repro.faults import FaultPlan, FaultSpec
from repro.objects.database import Database
from repro.orderentry.workload import OrderEntryWorkload, WorkloadConfig


@pytest.fixture
def two_atoms():
    db = Database()
    x = db.new_atom("x", 0)
    y = db.new_atom("y", 0)
    db.attach_child(x)
    db.attach_child(y)
    return db, x, y


def opposing(x, y):
    async def ab(tx):
        await tx.put(x, "A")
        await tx.pause()
        await tx.put(y, "A")
        return "A"

    async def ba(tx):
        await tx.put(y, "B")
        await tx.pause()
        await tx.put(x, "B")
        return "B"

    return {"A": ab, "B": ba}


class TestTimeoutPolicy:
    def test_deadlock_resolved_by_timeout(self, two_atoms):
        """A real A<->B deadlock: no cycle detection runs, but the first
        timer to expire restarts/aborts its waiter and both finish."""
        db, x, y = two_atoms
        kernel = run_transactions(
            db, opposing(x, y), deadlock_policy="timeout", lock_timeout=10.0
        )
        assert all(h.committed or h.aborted for h in kernel.handles.values())
        assert kernel.obs.snapshot().counter("timeout.fired") >= 1
        assert kernel.trace.of_kind("timeout")
        # serializable outcome either way
        assert is_semantically_serializable(kernel.history(), db=db).serializable

    def test_timeout_fires_at_virtual_deadline(self, two_atoms):
        from repro.runtime.scheduler import Pause

        db, x, __ = two_atoms

        async def holder(tx):
            await tx.put(x, "H")
            for __ in range(30):
                await Pause(5.0)  # hold x far past the budget
            return "H"

        async def waiter(tx):
            await tx.pause()  # let H grab x
            await tx.put(x, "W")
            return "W"

        kernel = run_transactions(
            db, {"H": holder, "W": waiter}, deadlock_policy="timeout", lock_timeout=20.0
        )
        events = kernel.trace.of_kind("timeout")
        assert events and events[0].txn == "W"
        assert events[0].detail["waited"] == 20.0
        # Top-level Put has no enclosing subtransaction to restart: the
        # waiter aborts with LockTimeout.
        assert kernel.handles["W"].aborted
        assert isinstance(kernel.handles["W"].error, LockTimeout)
        assert kernel.handles["H"].committed
        assert kernel.obs.snapshot().counter("timeout.aborts") == 1

    def test_granted_before_deadline_cancels_timer(self, two_atoms):
        from repro.runtime.scheduler import Pause

        db, x, __ = two_atoms

        async def brief_holder(tx):
            await tx.put(x, "H")
            await Pause(2.0)
            return "H"

        async def waiter(tx):
            await tx.pause()
            await tx.put(x, "W")
            return "W"

        kernel = run_transactions(
            db, {"H": brief_holder, "W": waiter},
            deadlock_policy="timeout", lock_timeout=50.0,
        )
        assert kernel.handles["W"].committed
        assert kernel.obs.snapshot().counter("timeout.fired") == 0
        assert not kernel.trace.of_kind("timeout")

    def test_subtransaction_waiter_restarts_not_aborts(self, order_entry):
        # Two transactions shipping the same orders: the blocked
        # ShipOrder subtransaction is restartable, so the timeout
        # resolves with a restart and both eventually commit.
        from repro.orderentry.transactions import make_t1

        async def rival(tx):
            return await tx.call(order_entry.item(0), "ShipOrder", 1)

        kernel = run_transactions(
            order_entry.db,
            {
                "T1": make_t1(order_entry.item(0), 1, order_entry.item(1), 2),
                "R": rival,
            },
            deadlock_policy="timeout",
            lock_timeout=5.0,
        )
        assert all(h.committed or h.aborted for h in kernel.handles.values())
        snapshot = kernel.obs.snapshot()
        if snapshot.counter("timeout.fired"):
            assert (
                snapshot.counter("timeout.restarts")
                + snapshot.counter("timeout.aborts")
                == snapshot.counter("timeout.fired")
            )

    def test_contended_workload_all_decided_and_serializable(self):
        workload = OrderEntryWorkload(
            WorkloadConfig(n_items=2, orders_per_item=2, seed=3)
        )
        programs = dict(workload.take(8))
        kernel = run_transactions(
            workload.db, programs,
            deadlock_policy="timeout", lock_timeout=15.0,
            policy="random", seed=3,
        )
        assert all(h.committed or h.aborted for h in kernel.handles.values())
        assert is_semantically_serializable(
            kernel.history(), db=workload.db
        ).serializable
        for handle in kernel.handles.values():
            assert not kernel.locks.locks_held_by_tree(handle.root)
            assert not kernel.locks.pending_of_tree(handle.root)


class TestTimeoutConfiguration:
    def test_default_budget_applies(self, db):
        kernel = TransactionManager(db, deadlock_policy="timeout")
        assert kernel.lock_timeout == TransactionManager.DEFAULT_LOCK_TIMEOUT

    def test_lock_timeout_requires_timeout_policy(self, db):
        with pytest.raises(ValueError, match="timeout"):
            TransactionManager(db, lock_timeout=10.0)

    def test_lock_timeout_must_be_positive(self, db):
        with pytest.raises(ValueError, match="positive"):
            TransactionManager(db, deadlock_policy="timeout", lock_timeout=0.0)

    def test_counters_exist_but_zero_under_other_policies(self, two_atoms):
        db, x, y = two_atoms
        kernel = run_transactions(db, opposing(x, y))
        snapshot = kernel.obs.snapshot()
        assert snapshot.counter("timeout.fired") == 0
        assert snapshot.counter("timeout.restarts") == 0
        assert snapshot.counter("timeout.aborts") == 0


class TestInjectedTimeout:
    def test_injected_timeout_under_detect_policy(self, two_atoms):
        """A lock-wait fault arms a timer without the timeout policy."""
        from repro.runtime.scheduler import Pause

        db, x, __ = two_atoms

        async def holder(tx):
            await tx.put(x, "H")
            for __ in range(20):
                await Pause(5.0)
            return "H"

        async def waiter(tx):
            await tx.pause()
            await tx.put(x, "W")
            return "W"

        plan = FaultPlan(
            specs=(FaultSpec(site="lock-wait", action="timeout",
                             txn="W", delay=7.0),)
        )
        kernel = run_transactions(db, {"H": holder, "W": waiter}, faults=plan)
        events = kernel.trace.of_kind("timeout")
        assert events and events[0].detail["waited"] == 7.0
        assert kernel.handles["W"].aborted
        assert isinstance(kernel.handles["W"].error, LockTimeout)
        assert kernel.handles["H"].committed

"""Unit tests for invocations and compatibility matrices."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.semantics.compatibility import CompatibilityMatrix
from repro.semantics.generic import ATOM_MATRIX, DATABASE_MATRIX, SET_MATRIX
from repro.semantics.invocation import Invocation


def inv(op: str, *args) -> Invocation:
    return Invocation(op, args)


class TestInvocation:
    def test_args_frozen_and_hashable(self):
        i = inv("Op", [1, 2], {"a": 1}, {3, 4})
        assert hash(i) is not None
        assert i.args[0] == (1, 2)

    def test_arg_accessor(self):
        i = inv("Op", "x", "y")
        assert i.arg(0) == "x"
        assert i.arg(5) is None
        assert i.arg(5, "d") == "d"

    def test_str(self):
        assert str(inv("ShipOrder", 3)) == "ShipOrder(3)"

    def test_equality(self):
        assert inv("A", 1) == inv("A", 1)
        assert inv("A", 1) != inv("A", 2)
        assert inv("A") != inv("B")


class TestCompatibilityMatrix:
    def make(self) -> CompatibilityMatrix:
        return CompatibilityMatrix("T", ["A", "B", "C"])

    def test_boolean_entries_symmetric(self):
        m = self.make()
        m.allow("A", "B")
        assert m.compatible(inv("A"), inv("B"))
        assert m.compatible(inv("B"), inv("A"))

    def test_conflict_entries(self):
        m = self.make()
        m.conflict("A", "B")
        assert not m.compatible(inv("A"), inv("B"))

    def test_unknown_pairs_conflict(self):
        m = self.make()
        assert not m.compatible(inv("A"), inv("C"))

    def test_unknown_operation_rejected(self):
        m = self.make()
        with pytest.raises(SchemaError, match="not declared"):
            m.allow("A", "Z")

    def test_predicate_entries_mirror_arguments(self):
        m = self.make()
        # compatible iff held's first arg is smaller than requested's
        m.allow_if("A", "B", lambda h, r: h.arg(0) < r.arg(0))
        assert m.compatible(inv("A", 1), inv("B", 2))
        assert not m.compatible(inv("A", 2), inv("B", 1))
        # mirrored cell swaps roles: held B(2), requested A(1) means
        # A(1) < B(2) in the original orientation
        assert m.compatible(inv("B", 2), inv("A", 1))
        assert not m.compatible(inv("B", 1), inv("A", 2))

    def test_distinct_arg_helper(self):
        m = self.make()
        m.allow_if_distinct_arg("A", "A")
        assert m.compatible(inv("A", 1), inv("A", 2))
        assert not m.compatible(inv("A", 1), inv("A", 1))

    def test_exactly_one_of_value_predicate(self):
        m = self.make()
        with pytest.raises(SchemaError):
            m.set_entry("A", "B")
        with pytest.raises(SchemaError):
            m.set_entry("A", "B", value=True, predicate=lambda h, r: True)

    def test_completeness_tracking(self):
        m = CompatibilityMatrix("T", ["A", "B"])
        assert not m.is_complete()
        m.allow("A", "A")
        m.allow("A", "B")
        m.conflict("B", "B")
        assert m.is_complete()
        assert m.missing_pairs() == []

    def test_table_rendering(self):
        m = CompatibilityMatrix("T", ["A", "B"])
        m.allow("A", "A")
        m.conflict("A", "B")
        m.allow_if_distinct_arg("B", "B")
        table = m.as_table()
        assert table[0] == ["T", "A", "B"]
        assert table[1] == ["A", "ok", "conflict"]
        assert table[2][2] == "ok iff arg0 differs"
        assert "conflict" in m.format_table()


class TestGenericMatrices:
    def test_atom_matrix(self):
        assert ATOM_MATRIX.compatible(inv("Get"), inv("Get"))
        assert not ATOM_MATRIX.compatible(inv("Get"), inv("Put", 1))
        assert not ATOM_MATRIX.compatible(inv("Put", 1), inv("Put", 1))
        assert ATOM_MATRIX.is_complete()

    def test_set_matrix_key_dependence(self):
        assert SET_MATRIX.compatible(inv("Insert", 1), inv("Insert", 2))
        assert not SET_MATRIX.compatible(inv("Insert", 1), inv("Insert", 1))
        assert SET_MATRIX.compatible(inv("Insert", 1), inv("Select", 2))
        assert not SET_MATRIX.compatible(inv("Insert", 1), inv("Select", 1))
        assert SET_MATRIX.compatible(inv("Remove", 1), inv("Remove", 2))
        assert not SET_MATRIX.compatible(inv("Remove", 1), inv("Remove", 1))

    def test_set_matrix_scan_and_size(self):
        assert not SET_MATRIX.compatible(inv("Insert", 1), inv("Scan"))
        assert not SET_MATRIX.compatible(inv("Remove", 1), inv("Size"))
        assert SET_MATRIX.compatible(inv("Scan"), inv("Scan"))
        assert SET_MATRIX.compatible(inv("Select", 1), inv("Scan"))
        assert SET_MATRIX.compatible(inv("Size"), inv("Size"))
        assert SET_MATRIX.is_complete()

    def test_database_matrix(self):
        assert DATABASE_MATRIX.compatible(inv("Transaction", "a"), inv("Transaction", "b"))

"""Unit tests for the semantic-serializability checker (BBG89 reduction)."""

from __future__ import annotations

from typing import Any, Optional

from repro.core.serializability import is_semantically_serializable, matrices_from_database
from repro.objects.oid import Oid
from repro.semantics.compatibility import CompatibilityMatrix
from repro.txn.history import ActionRecord, History

DB = Oid("Database", 1)
BOX = Oid("Box", 2)
ATOM = Oid("Atom", 3)
ATOM2 = Oid("Atom", 4)

COMPOSITION = {DB: None, BOX: DB, ATOM: BOX, ATOM2: DB}


def box_matrix() -> CompatibilityMatrix:
    m = CompatibilityMatrix("Box", ["Add", "Read"])
    m.allow("Add", "Add")
    m.conflict("Add", "Read")
    m.allow("Read", "Read")
    return m


class _HistoryBuilder:
    """Tiny DSL for histories: sequential begin/end numbering."""

    def __init__(self) -> None:
        self.records: list[ActionRecord] = []
        self._seq = 0

    def seq(self) -> int:
        self._seq += 1
        return self._seq

    def add(
        self,
        node_id: str,
        parent: Optional[str],
        txn: str,
        target: Oid,
        op: str,
        begin: int,
        end: int,
        args: tuple[Any, ...] = (),
    ) -> None:
        self.records.append(
            ActionRecord(
                node_id=node_id,
                parent_id=parent,
                txn=txn,
                target=target,
                operation=op,
                args=args,
                begin_seq=begin,
                end_seq=end,
                status="committed",
                depth=0 if parent is None else 1,
            )
        )

    def history(self) -> History:
        return History(records=self.records, composition_parent=dict(COMPOSITION))


def check(history: History, budget: int = 50_000):
    return is_semantically_serializable(
        history, type_matrices={"Box": box_matrix()}, budget=budget
    )


class TestTrivialCases:
    def test_empty_history(self):
        assert check(History(records=[], composition_parent={})).serializable

    def test_single_transaction(self):
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 6)
        b.add("a", "t1", "T1", BOX, "Add", 2, 5)
        b.add("p", "a", "T1", ATOM, "Put", 3, 4, args=(1,))
        result = check(b.history())
        assert result.serializable
        assert result.serial_order == ["T1"]

    def test_serial_transactions(self):
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 4)
        b.add("p1", "t1", "T1", ATOM, "Put", 2, 3, args=(1,))
        b.add("t2", None, "T2", DB, "Transaction", 5, 8)
        b.add("p2", "t2", "T2", ATOM, "Put", 6, 7, args=(2,))
        result = check(b.history())
        assert result.serializable
        assert result.serial_order == ["T1", "T2"]


class TestFlatConflicts:
    def test_interleaved_writes_same_atom_not_serializable(self):
        """w1(x) w2(x) w1(x): classic non-serializable pattern."""
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 8)
        b.add("w1a", "t1", "T1", ATOM, "Put", 2, 3, args=("a",))
        b.add("w1b", "t1", "T1", ATOM, "Put", 6, 7, args=("b",))
        b.add("t2", None, "T2", DB, "Transaction", 1, 8)
        b.add("w2", "t2", "T2", ATOM, "Put", 4, 5, args=("c",))
        result = check(b.history())
        assert not result.serializable
        assert not result.exhausted

    def test_interleaved_writes_different_atoms_serializable(self):
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 8)
        b.add("w1a", "t1", "T1", ATOM, "Put", 2, 3, args=("a",))
        b.add("w1b", "t1", "T1", ATOM, "Put", 6, 7, args=("b",))
        b.add("t2", None, "T2", DB, "Transaction", 1, 8)
        b.add("w2", "t2", "T2", ATOM2, "Put", 4, 5, args=("c",))
        assert check(b.history()).serializable

    def test_reads_always_serializable(self):
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 8)
        b.add("r1a", "t1", "T1", ATOM, "Get", 2, 3)
        b.add("r1b", "t1", "T1", ATOM, "Get", 6, 7)
        b.add("t2", None, "T2", DB, "Transaction", 1, 8)
        b.add("r2", "t2", "T2", ATOM, "Get", 4, 5)
        assert check(b.history()).serializable


class TestSemanticRelief:
    def test_leaf_conflict_masked_by_commuting_parents(self):
        """The paper's key effect: interleaved Put/Put on the same atom
        is reducible when both sit under commuting Add actions."""
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 20)
        b.add("add1", "t1", "T1", BOX, "Add", 2, 7, args=(1,))
        b.add("p1", "add1", "T1", ATOM, "Put", 3, 4, args=("x",))
        b.add("q1", "t1", "T1", ATOM2, "Put", 10, 11, args=("later",))
        b.add("t2", None, "T2", DB, "Transaction", 1, 20)
        b.add("add2", "t2", "T2", BOX, "Add", 5, 9, args=(2,))
        b.add("p2", "add2", "T2", ATOM, "Put", 8, 8, args=("y",))
        # Leaf orders: p1(3) p2(8) q1(10) — T1's Put before T2's Put
        # before T1's second op: un-reducible at the leaf level, but the
        # Adds commute so the collapsed subtrees can be exchanged.
        result = check(b.history())
        assert result.serializable

    def test_conflicting_action_sandwiched_not_serializable(self):
        """T2's Read sits between two T1 Adds it conflicts with: the
        conflict cycle T1 -> T2 -> T1 makes the history irreducible."""
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 20)
        b.add("add1", "t1", "T1", BOX, "Add", 2, 4, args=(1,))
        b.add("p1", "add1", "T1", ATOM, "Put", 3, 3, args=("x",))
        b.add("add2", "t1", "T1", BOX, "Add", 10, 12, args=(2,))
        b.add("p2", "add2", "T1", ATOM, "Put", 11, 11, args=("y",))
        b.add("t2", None, "T2", DB, "Transaction", 1, 20)
        b.add("read2", "t2", "T2", BOX, "Read", 6, 8, args=(3,))
        b.add("g2", "read2", "T2", ATOM, "Get", 7, 7)
        result = check(b.history())
        assert not result.serializable
        assert not result.exhausted

    def test_bypass_conflict_detected(self):
        """A direct leaf read between an action's leaf write and a later
        same-atom write of the same transaction cannot be serialized —
        the Fig. 5 shape at its smallest."""
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 20)
        b.add("add1", "t1", "T1", BOX, "Add", 2, 5, args=(1,))
        b.add("p1", "add1", "T1", ATOM, "Put", 3, 4, args=("x",))
        b.add("q1", "t1", "T1", ATOM, "Put", 10, 11, args=("z",))
        # T2 bypasses BOX and reads ATOM directly between T1's writes
        b.add("t2", None, "T2", DB, "Transaction", 1, 20)
        b.add("g2", "t2", "T2", ATOM, "Get", 7, 8)
        result = check(b.history())
        assert not result.serializable


class TestAbortedFiltering:
    def test_aborted_transactions_ignored(self):
        records = [
            ActionRecord("t1", None, "T1", DB, "Transaction", (), 1, 4, "committed", 0),
            ActionRecord("p1", "t1", "T1", ATOM, "Put", ("a",), 2, 3, "committed", 1),
            ActionRecord("t2", None, "T2", DB, "Transaction", (), 1, 4, "aborted", 0),
            ActionRecord("p2", "t2", "T2", ATOM, "Put", ("b",), 2, 3, "committed", 1),
        ]
        history = History(records=records, composition_parent=dict(COMPOSITION))
        result = check(history)
        assert result.serializable
        assert result.serial_order == ["T1"]


class TestBudget:
    def test_budget_exhaustion_reported(self):
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 40)
        b.add("t2", None, "T2", DB, "Transaction", 1, 40)
        # alternating commuting reads generate many swap states
        for i in range(6):
            owner = "t1" if i % 2 == 0 else "t2"
            txn = "T1" if i % 2 == 0 else "T2"
            b.add(f"r{i}", owner, txn, ATOM, "Get", 2 + i * 2, 3 + i * 2)
        result = check(b.history(), budget=2)
        assert not result.serializable
        assert result.exhausted

    def test_same_history_succeeds_with_budget(self):
        b = _HistoryBuilder()
        b.add("t1", None, "T1", DB, "Transaction", 1, 40)
        b.add("t2", None, "T2", DB, "Transaction", 1, 40)
        for i in range(6):
            owner = "t1" if i % 2 == 0 else "t2"
            txn = "T1" if i % 2 == 0 else "T2"
            b.add(f"r{i}", owner, txn, ATOM, "Get", 2 + i * 2, 3 + i * 2)
        result = check(b.history())
        assert result.serializable


class TestMatricesFromDatabase:
    def test_collects_encapsulated_matrices(self, order_entry):
        matrices = matrices_from_database(order_entry.db)
        assert set(matrices) == {"Item", "Order"}

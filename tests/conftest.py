"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.objects.database import Database
from repro.orderentry.schema import OrderEntryDatabase, build_order_entry_database

# Hypothesis profiles: CI and local runs use "default"; the scheduled
# nightly workflow selects "nightly" (HYPOTHESIS_PROFILE=nightly) and
# additionally raises per-test example budgets via the
# REPRO_HYPOTHESIS_MULTIPLIER knob read by tests.helpers.examples —
# explicit @settings(max_examples=...) on a test overrides any profile,
# so the multiplier is what actually scales the heavy suites.
hypothesis_settings.register_profile("default", deadline=None)
hypothesis_settings.register_profile(
    "nightly", deadline=None, max_examples=200, print_blob=True
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def order_entry() -> OrderEntryDatabase:
    """A small order-entry database: 2 items x 2 orders, status 'new'."""
    return build_order_entry_database(n_items=2, orders_per_item=2)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.objects.database import Database
from repro.orderentry.schema import OrderEntryDatabase, build_order_entry_database


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def order_entry() -> OrderEntryDatabase:
    """A small order-entry database: 2 items x 2 orders, status 'new'."""
    return build_order_entry_database(n_items=2, orders_per_item=2)

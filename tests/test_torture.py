"""The crash-torture harness: pinned windows, properties, zero-cost-off.

The sweep itself runs in ``benchmarks/bench_r2_torture.py`` and CI's
``torture-smoke``; here we pin the windows the issue names — crash
*during compensation* and crash *between a subtransaction's WAL commit
record and its lock conversion* — plus a hypothesis property over crash
steps and the bit-identity guarantee for fault-free runs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import run_transactions
from repro.faults import FaultPlan
from repro.faults.torture import (
    TortureScenario,
    _run_instance,
    _SerialOracle,
    _torture_point,
    find_bypass_anomaly,
    order_entry_scenario,
    run_torture,
)
from repro.orderentry.schema import (
    ITEM_TYPE,
    ORDER_TYPE,
    build_order_entry_database,
)
from repro.orderentry.transactions import make_t1, make_t2
from repro.recovery.wal import SubtxnCommitRecord
from repro.txn.retry import RetryPolicy

TYPE_SPECS = {"Item": ITEM_TYPE, "Order": ORDER_TYPE}


def aborting_scenario() -> TortureScenario:
    """T1 ships both orders then fails: the abort compensates both
    ShipOrders, so crash points land before, inside, and after the
    compensation run."""

    def instantiate():
        built = build_order_entry_database(n_items=2, orders_per_item=2)

        async def doomed(tx):
            await tx.call(built.item(0), "ShipOrder", 1)
            await tx.call(built.item(1), "ShipOrder", 2)
            raise ValueError("business rule violated")

        return built.db, {
            "D": doomed,
            "T2": make_t2(built.item(0), 1, built.item(1), 2),
        }

    return TortureScenario(
        name="aborting", instantiate=instantiate, type_specs=TYPE_SPECS
    )


class TestCrashDuringCompensation:
    def test_every_point_of_an_aborting_run_recovers(self):
        report = run_torture(aborting_scenario())
        assert report.all_ok, report.summary()
        # the sweep actually crossed the compensation regime
        assert any(o.compensated > 0 for o in report.outcomes if o.crashed)

    def test_pinned_crash_between_compensations(self):
        scenario = aborting_scenario()
        __, ref_wal, __crash = _run_instance(scenario)
        comp_positions = [
            i + 1  # 1-based WAL visit
            for i, record in enumerate(ref_wal)
            if isinstance(record, SubtxnCommitRecord) and record.compensates
        ]
        assert len(comp_positions) == 2  # both ShipOrders compensated
        oracle = _SerialOracle(scenario)
        # Crash right after the FIRST compensation committed: one
        # ShipOrder logically undone and durable, the other still live.
        # Recovery must honour the committed compensation (cover its
        # target) and compensate only the remaining one.
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            outcome = _torture_point(
                scenario,
                oracle,
                "wal",
                comp_positions[0],
                FaultPlan.crash_at_wal_record(comp_positions[0]),
                tmp,
            )
        assert outcome.crashed and outcome.crash_site == "wal-append"
        assert outcome.ok, outcome.failures
        assert outcome.compensated == 1
        assert "D" in outcome.losers


class TestSubcommitWindow:
    def test_crash_between_subcommit_record_and_lock_conversion(self):
        # A wal-append crash on a SubtxnCommit record dies after the
        # record is durable but before _complete_node converts the
        # subtransaction's locks — the window step-granularity sweeps
        # cannot reach.  Every such point must recover.
        scenario = order_entry_scenario(seed=0, n_transactions=4)
        __, ref_wal, __crash = _run_instance(scenario)
        subcommits = [
            i + 1
            for i, record in enumerate(ref_wal)
            if isinstance(record, SubtxnCommitRecord) and not record.compensates
        ]
        assert subcommits, "workload must commit subtransactions"
        oracle = _SerialOracle(scenario)
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            for position in subcommits:
                outcome = _torture_point(
                    scenario,
                    oracle,
                    "wal",
                    position,
                    FaultPlan.crash_at_wal_record(position),
                    tmp,
                )
                assert outcome.crashed, position
                assert outcome.ok, (position, outcome.failures)

    def test_subcommit_crash_leaves_unconverted_locks_held(self, order_entry):
        # The crashed kernel itself proves the window: the committed
        # subtransaction's WAL record exists, yet its top-level
        # transaction is unfinished — exactly the state recovery's
        # multi-level undo is for.
        from repro.errors import CrashPoint
        from repro.faults import FaultSpec
        from repro.recovery import WriteAheadLog
        from repro.core.kernel import TransactionManager
        from repro.runtime.scheduler import Scheduler

        import pytest

        plan = FaultPlan(
            specs=(FaultSpec(site="wal-append", action="crash",
                             operation="SubtxnCommit"),)
        )
        wal = WriteAheadLog()
        kernel = TransactionManager(
            order_entry.db, scheduler=Scheduler(), wal=wal, faults=plan
        )
        kernel.spawn("T1", make_t1(order_entry.item(0), 1, order_entry.item(1), 2))
        with pytest.raises(CrashPoint):
            kernel.run()
        committed = [r for r in wal if isinstance(r, SubtxnCommitRecord)]
        assert len(committed) == 1
        assert wal.status_of("T1") == "in-flight"
        # the subtree's locks were never converted/released
        assert kernel.locks.locks_held_by_tree(kernel.handles["T1"].root)


class TestCrashStepProperty:
    @settings(max_examples=20, deadline=None)
    @given(step=st.integers(min_value=0, max_value=10_000))
    def test_any_step_crash_recovers(self, step):
        scenario = order_entry_scenario(seed=1, n_transactions=3)
        reference, __, __crash = _run_instance(scenario)
        at = step % reference.scheduler.steps
        oracle = _SerialOracle(scenario)
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            outcome = _torture_point(
                scenario, oracle, "step", at, FaultPlan.crash_at_step(at), tmp
            )
        assert outcome.crashed
        assert outcome.ok, (at, outcome.failures)


class TestAnomalyDetection:
    def test_naive_protocol_caught_semantic_clean(self):
        seed, report = find_bypass_anomaly()
        assert seed is not None
        assert report.anomalies
        from repro.core.protocol import SemanticLockingProtocol
        from repro.faults.torture import fig5_bypass_scenario

        clean = run_torture(
            fig5_bypass_scenario(SemanticLockingProtocol, seed), wal_sweep=False
        )
        assert clean.all_ok, clean.summary()

    def test_report_json_roundtrip(self):
        import json

        report = run_torture(
            order_entry_scenario(seed=0, n_transactions=3), steps=5, wal_sweep=False
        )
        data = json.loads(report.to_json())
        assert data["all_ok"] is True
        assert data["crash_points"] == report.crash_points
        assert "OK" in report.summary()


class TestZeroCostWhenOff:
    def fingerprint(self, kernel):
        return (
            [e.to_dict() for e in kernel.trace],
            {n: (h.committed, h.result) for n, h in kernel.handles.items()},
            kernel.scheduler.clock,
            kernel.scheduler.steps,
        )

    def run_once(self, **kwargs):
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        return run_transactions(
            built.db,
            {
                "T1": make_t1(built.item(0), 1, built.item(1), 2),
                "T2": make_t2(built.item(0), 1, built.item(1), 2),
            },
            policy="random",
            seed=13,
            **kwargs,
        )

    def test_empty_plan_and_default_policy_are_bit_identical(self):
        bare = self.fingerprint(self.run_once())
        # An empty plan binds an injector but can never fire; the
        # default retry policy reproduces the historical constant; both
        # must leave traces, results, clock, and step count untouched.
        plumbed = self.fingerprint(
            self.run_once(faults=FaultPlan(), retry_policy=RetryPolicy())
        )
        assert plumbed == bare
        legacy_knob = self.fingerprint(self.run_once(max_subtxn_restarts=25))
        assert legacy_knob == bare

"""Tests for the wait-die and wound-wait deadlock prevention policies."""

from __future__ import annotations

import pytest

from repro.core.kernel import run_transactions
from repro.core.serializability import is_semantically_serializable
from repro.errors import DeadlockError
from repro.objects.database import Database
from repro.orderentry.workload import OrderEntryWorkload, WorkloadConfig


@pytest.fixture
def two_atoms():
    db = Database()
    x = db.new_atom("x", 0)
    y = db.new_atom("y", 0)
    db.attach_child(x)
    db.attach_child(y)
    return db, x, y


def opposing(x, y):
    async def ab(tx):
        await tx.put(x, "A")
        await tx.pause()
        await tx.put(y, "A")
        return "A"

    async def ba(tx):
        await tx.put(y, "B")
        await tx.pause()
        await tx.put(x, "B")
        return "B"

    return {"A": ab, "B": ba}


class TestWaitDie:
    def test_younger_requester_dies(self, two_atoms):
        db, x, y = two_atoms
        kernel = run_transactions(db, opposing(x, y), deadlock_policy="wait-die")
        # B (younger) requests x held by A (older) -> B dies.
        assert kernel.handles["A"].committed
        assert kernel.handles["B"].aborted
        assert isinstance(kernel.handles["B"].error, DeadlockError)
        assert x.raw_get() == "A" and y.raw_get() == "A"

    def test_older_requester_waits(self, two_atoms):
        """A single conflict where the OLDER transaction requests: it
        waits (no death) and both commit."""
        db, x, __ = two_atoms

        async def young_then_release(tx):
            await tx.put(x, "B")
            return "B"

        async def old_waits(tx):
            for __ in range(4):
                await tx.pause()  # let the younger one grab x first
            await tx.put(x, "A")
            return "A"

        kernel = run_transactions(
            db, {"A": old_waits, "B": young_then_release}, deadlock_policy="wait-die"
        )
        assert kernel.handles["A"].committed
        assert kernel.handles["B"].committed
        assert x.raw_get() == "A"  # A waited for B's commit

    def test_no_stalls_on_contended_workload(self):
        workload = OrderEntryWorkload(WorkloadConfig(n_items=2, orders_per_item=2, seed=3))
        programs = dict(workload.take(8))
        kernel = run_transactions(
            workload.db, programs, deadlock_policy="wait-die", policy="random", seed=3
        )
        assert all(h.committed or h.aborted for h in kernel.handles.values())
        assert is_semantically_serializable(kernel.history(), db=workload.db)


class TestWoundWait:
    def test_older_requester_wounds_younger_holder(self, two_atoms):
        db, x, __ = two_atoms

        async def young_holder(tx):
            await tx.put(x, "B")
            for __ in range(6):
                await tx.pause()
            return "B"

        async def old_requester(tx):
            await tx.pause()  # let B acquire first
            await tx.put(x, "A")
            return "A"

        kernel = run_transactions(
            db, {"A": old_requester, "B": young_holder}, deadlock_policy="wound-wait"
        )
        assert kernel.handles["A"].committed
        assert kernel.handles["B"].aborted  # wounded
        assert x.raw_get() == "A"

    def test_younger_requester_waits(self, two_atoms):
        db, x, __ = two_atoms

        async def old_holder(tx):
            await tx.put(x, "A")
            for __ in range(4):
                await tx.pause()
            return "A"

        async def young_requester(tx):
            await tx.put(x, "B")
            return "B"

        kernel = run_transactions(
            db, {"A": old_holder, "B": young_requester}, deadlock_policy="wound-wait"
        )
        assert kernel.handles["A"].committed
        assert kernel.handles["B"].committed
        assert x.raw_get() == "B"  # B waited, then wrote after A

    def test_opposing_order_resolves(self, two_atoms):
        db, x, y = two_atoms
        kernel = run_transactions(db, opposing(x, y), deadlock_policy="wound-wait")
        outcomes = {n: h.committed for n, h in kernel.handles.items()}
        assert outcomes["A"]  # the elder always survives wound-wait
        assert kernel.handles["B"].aborted
        assert x.raw_get() == "A" and y.raw_get() == "A"

    def test_no_stalls_on_contended_workload(self):
        workload = OrderEntryWorkload(WorkloadConfig(n_items=2, orders_per_item=2, seed=4))
        programs = dict(workload.take(8))
        kernel = run_transactions(
            workload.db, programs, deadlock_policy="wound-wait", policy="random", seed=4
        )
        assert all(h.committed or h.aborted for h in kernel.handles.values())
        assert is_semantically_serializable(kernel.history(), db=workload.db)


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        from repro.core.kernel import TransactionManager

        with pytest.raises(ValueError, match="unknown deadlock policy"):
            TransactionManager(Database(), deadlock_policy="optimistic")

    def test_policies_preserve_serializability_across_seeds(self):
        for policy in ("wait-die", "wound-wait"):
            for seed in range(4):
                workload = OrderEntryWorkload(
                    WorkloadConfig(n_items=2, orders_per_item=2, seed=seed)
                )
                programs = dict(workload.take(5))
                kernel = run_transactions(
                    workload.db,
                    programs,
                    deadlock_policy=policy,
                    policy="random",
                    seed=seed,
                )
                result = is_semantically_serializable(kernel.history(), db=workload.db)
                assert result.serializable, (policy, seed)

"""Scenario tests reproducing the paper's figures (F4–F9).

Each test pins down one of the paper's worked examples:

* Fig. 4 — T1 (ship) and T2 (pay) interleave on the same orders without
  blocking under the semantic protocol; the history is semantically
  serializable.
* Fig. 5 — the naive Section-3 protocol admits a non-serializable
  execution when T3 bypasses the Item encapsulation; the full protocol
  blocks T3 until T1's top-level commit.
* Fig. 6 — case 1: a formal conflict with a retained lock is ignored
  when the commutative holder-side ancestor has committed.
* Fig. 7 — case 2: with the commutative ancestor still active, the
  requester waits exactly for that subtransaction's commit.
* Figs. 8/9 — lifecycle conformance of the kernel's lock events.
"""

from __future__ import annotations

import pytest

from repro.core.kernel import TransactionManager
from repro.core.protocol import SemanticLockingProtocol, SemanticNoReliefProtocol
from repro.core.serializability import is_semantically_serializable
from repro.orderentry.schema import PAID, SHIPPED, build_order_entry_database
from repro.orderentry.transactions import make_t1, make_t2, make_t3
from repro.protocols.open_nested_naive import OpenNestedNaiveProtocol
from repro.runtime.scheduler import Scheduler

from tests.helpers import run_programs


class TestFig4:
    """T1 ships and T2 pays the same two orders, concurrently."""

    def run_fig4(self, protocol=None, policy="fifo", seed=None):
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        programs = {
            "T1": make_t1(built.item(0), 1, built.item(1), 2),
            "T2": make_t2(built.item(0), 1, built.item(1), 2),
        }
        kernel = run_programs(built.db, programs, protocol=protocol, policy=policy, seed=seed)
        return built, kernel

    def test_both_commit_without_top_level_waits(self):
        built, kernel = self.run_fig4()
        assert kernel.handles["T1"].committed
        assert kernel.handles["T2"].committed
        for event in kernel.trace.of_kind("block"):
            assert all(w not in ("T1", "T2") for w in event.detail["waits_for"])

    def test_non_leaf_actions_actually_interleave(self):
        """The figure shows concurrent non-leaf actions: T2's PayOrder
        overlaps T1's ShipOrder on the same item."""
        built, kernel = self.run_fig4()
        history = kernel.history()
        ships = [r for r in history.records if r.operation == "ShipOrder"]
        pays = [r for r in history.records if r.operation == "PayOrder"]
        overlaps = [
            (s, p)
            for s in ships
            for p in pays
            if s.target == p.target and s.begin_seq < p.end_seq and p.begin_seq < s.end_seq
        ]
        assert overlaps, "ShipOrder and PayOrder on the same item should overlap"

    def test_history_semantically_serializable(self):
        built, kernel = self.run_fig4()
        result = is_semantically_serializable(kernel.history(), db=built.db)
        assert result.serializable

    def test_effects_as_after_serial_execution(self):
        built, kernel = self.run_fig4()
        assert built.status_atom(0, 0).raw_get().events == frozenset({SHIPPED, PAID})
        assert built.status_atom(1, 1).raw_get().events == frozenset({SHIPPED, PAID})
        assert built.item(0).impl_component("QOH").raw_get() == 999

    @pytest.mark.parametrize("seed", range(8))
    def test_serializable_under_random_interleavings(self, seed):
        built, kernel = self.run_fig4(policy="random", seed=seed)
        assert kernel.handles["T1"].committed or kernel.handles["T1"].aborted
        result = is_semantically_serializable(kernel.history(), db=built.db)
        assert result.serializable, f"seed {seed}"


class TestFig5:
    """T3 bypasses the Item encapsulation while T1 ships two orders."""

    def build(self):
        built = build_order_entry_database(n_items=2, orders_per_item=1)
        programs = {
            "T1": make_t1(built.item(0), 1, built.item(1), 1),
            "T3": make_t3(built.order(0, 0), built.order(1, 0)),
        }
        return built, programs

    def test_naive_protocol_admits_anomaly(self):
        """Some interleaving lets T3 observe (shipped, not shipped) —
        impossible in any serial execution — and the checker agrees."""
        anomaly_seen = False
        for seed in range(40):
            built, programs = self.build()
            kernel = run_programs(
                built.db,
                programs,
                protocol=OpenNestedNaiveProtocol(),
                policy="random",
                seed=seed,
            )
            if kernel.handles["T3"].result == (True, False):
                anomaly_seen = True
                result = is_semantically_serializable(kernel.history(), db=built.db)
                assert not result.serializable
                break
        assert anomaly_seen, "expected the Fig. 5 anomaly under some seed"

    @pytest.mark.parametrize("seed", range(20))
    def test_full_protocol_never_admits_anomaly(self, seed):
        built, programs = self.build()
        kernel = run_programs(
            built.db,
            programs,
            protocol=SemanticLockingProtocol(),
            policy="random",
            seed=seed,
        )
        t3 = kernel.handles["T3"]
        if t3.committed:
            assert t3.result in ((True, True), (False, False))
        result = is_semantically_serializable(kernel.history(), db=built.db)
        assert result.serializable

    def test_retained_lock_blocks_t3_until_top_commit(self):
        """With T1 suspended after its first completed ShipOrder, T3's
        direct TestStatus(shipped) must block on T1 (the paper's point:
        the retained ChangeStatus lock still conflicts)."""
        built = build_order_entry_database(n_items=2, orders_per_item=1)
        scheduler = Scheduler()
        kernel = TransactionManager(
            built.db, protocol=SemanticLockingProtocol(), scheduler=scheduler
        )
        gate = scheduler.create_signal("after-first-ship")

        def probe(node, phase):
            if (
                phase == "post"
                and node.invocation.operation == "ShipOrder"
                and node.top_level_name == "T1"
                and not gate.done
            ):
                gate.fire()
            return None

        kernel.probe = probe

        async def t3(tx):
            await gate
            first = await tx.call(built.order(0, 0), "TestStatus", SHIPPED)
            second = await tx.call(built.order(1, 0), "TestStatus", SHIPPED)
            return (first, second)

        kernel.spawn("T1", make_t1(built.item(0), 1, built.item(1), 1))
        kernel.spawn("T3", t3)
        kernel.run()

        t3_blocks = [e for e in kernel.trace.of_kind("block") if e.txn == "T3"]
        assert t3_blocks, "T3 should have hit T1's retained lock"
        assert t3_blocks[0].detail["waits_for"] == ["T1"]
        # blocked until T1's commit, so T3 sees a consistent snapshot
        assert kernel.handles["T3"].result == (True, True)


def _fig6_setup(protocol):
    """T1 finished ShipOrder(i1, o1); T4 then checks payment of o1."""
    built = build_order_entry_database(n_items=2, orders_per_item=1)
    scheduler = Scheduler()
    kernel = TransactionManager(built.db, protocol=protocol, scheduler=scheduler)
    gate = scheduler.create_signal("after-first-ship")

    def probe(node, phase):
        if (
            phase == "post"
            and node.invocation.operation == "ShipOrder"
            and node.top_level_name == "T1"
            and not gate.done
        ):
            gate.fire()
        return None

    kernel.probe = probe

    async def t4(tx):
        await gate
        first = await tx.call(built.order(0, 0), "TestStatus", PAID)
        second = await tx.call(built.order(1, 0), "TestStatus", PAID)
        return (first, second)

    kernel.spawn("T1", make_t1(built.item(0), 1, built.item(1), 1))
    kernel.spawn("T4", t4)
    kernel.run()
    return built, kernel


class TestFig6:
    """Case 1: committed commutative ancestor relieves the conflict."""

    def test_semantic_protocol_does_not_block_t4(self):
        built, kernel = _fig6_setup(SemanticLockingProtocol())
        t4_blocks = [e for e in kernel.trace.of_kind("block") if e.txn == "T4"]
        assert t4_blocks == []
        assert kernel.handles["T4"].result == (False, False)

    def test_t4_reads_inside_t1_span(self):
        built, kernel = _fig6_setup(SemanticLockingProtocol())
        history = kernel.history()
        t1_root = next(r for r in history.top_level() if r.txn == "T1")
        t4_gets = [r for r in history.records if r.txn == "T4" and r.operation == "Get"]
        assert t4_gets
        assert any(r.begin_seq < t1_root.end_seq for r in t4_gets)

    def test_ablation_blocks_without_relief(self):
        """Without the commutative-ancestor check, the retained Put lock
        blocks T4 until T1's commit — the unnecessary blocking the
        paper's case 1 eliminates."""
        built, kernel = _fig6_setup(SemanticNoReliefProtocol())
        t4_blocks = [e for e in kernel.trace.of_kind("block") if e.txn == "T4"]
        assert t4_blocks
        assert t4_blocks[0].detail["waits_for"] == ["T1"]

    def test_history_serializable_either_way(self):
        for protocol in (SemanticLockingProtocol(), SemanticNoReliefProtocol()):
            built, kernel = _fig6_setup(protocol)
            assert is_semantically_serializable(kernel.history(), db=built.db)


def _fig7_setup(protocol):
    """T5 computes TotalPayment(i1) while T1 is mid-ShipOrder(i1, o1):
    ChangeStatus completed, ShipOrder not yet."""
    built = build_order_entry_database(
        n_items=1, orders_per_item=1, initial_events=frozenset({PAID})
    )
    scheduler = Scheduler()
    kernel = TransactionManager(built.db, protocol=protocol, scheduler=scheduler)
    g_mid_ship = scheduler.create_signal("mid-ship")
    g_t5_requested = scheduler.create_signal("t5-requested")
    status_oid = built.status_atom(0, 0).oid

    def probe(node, phase):
        if (
            phase == "post"
            and node.invocation.operation == "ChangeStatus"
            and node.top_level_name == "T1"
        ):
            g_mid_ship.fire()
            return g_t5_requested  # suspend T1 inside ShipOrder
        if (
            phase == "pre"
            and node.top_level_name == "T5"
            and node.invocation.operation == "Get"
            and node.target == status_oid
            and not g_t5_requested.done
        ):
            # fire in the same step: T5's lock request lands while
            # ShipOrder is still active
            g_t5_requested.fire()
        return None

    kernel.probe = probe

    async def t1(tx):
        return await tx.call(built.item(0), "ShipOrder", 1)

    async def t5(tx):
        await g_mid_ship
        return await tx.call(built.item(0), "TotalPayment")

    kernel.spawn("T1", t1)
    kernel.spawn("T5", t5)
    kernel.run()
    return built, kernel, status_oid


class TestFig7:
    """Case 2: active commutative ancestor — wait for its subtxn commit."""

    def test_t5_blocks_on_shiporder_subtransaction(self):
        built, kernel, status_oid = _fig7_setup(SemanticLockingProtocol())
        t5_blocks = [e for e in kernel.trace.of_kind("block") if e.txn == "T5"]
        assert t5_blocks, "T5's status read should hit the retained Put lock"
        history = kernel.history()
        ship = next(r for r in history.records if r.operation == "ShipOrder")
        assert t5_blocks[0].detail["waits_for"] == [ship.node_id]

    @staticmethod
    def _event_indexes(kernel):
        """(index of T5's lock re-grant, index of T1's lock release)."""
        events = list(kernel.trace)
        regrant = next(
            i for i, e in enumerate(events) if e.kind == "regrant" and e.txn == "T5"
        )
        release = next(
            i for i, e in enumerate(events) if e.kind == "release" and e.txn == "T1"
        )
        return regrant, release

    def test_t5_granted_at_subtransaction_commit_not_top_level(self):
        built, kernel, status_oid = _fig7_setup(SemanticLockingProtocol())
        regrant, release = self._event_indexes(kernel)
        assert regrant < release  # woken by ShipOrder's commit
        assert kernel.handles["T5"].result == 10  # 1 paid order, qty 1 * 10

    def test_ablation_waits_for_top_level(self):
        built, kernel, status_oid = _fig7_setup(SemanticNoReliefProtocol())
        regrant, release = self._event_indexes(kernel)
        assert regrant > release  # only T1's release unblocks T5

    def test_history_serializable(self):
        built, kernel, __ = _fig7_setup(SemanticLockingProtocol())
        assert is_semantically_serializable(kernel.history(), db=built.db)


class TestFig8Fig9Conformance:
    """Lock-lifecycle obligations of the Fig. 8 pseudo-code."""

    def test_every_action_requests_before_granting(self):
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        kernel = run_programs(
            built.db,
            {
                "T1": make_t1(built.item(0), 1, built.item(1), 2),
                "T2": make_t2(built.item(0), 1, built.item(1), 2),
            },
        )
        by_node: dict[str, list[str]] = {}
        for event in kernel.trace.of_kind("request", "grant", "block", "wake"):
            by_node.setdefault(event.node, []).append(event.kind)
        for node, kinds in by_node.items():
            assert kinds[0] == "request", (node, kinds)
            assert kinds[-1] in ("grant", "wake"), (node, kinds)
            if "block" in kinds:
                assert kinds.index("block") < kinds.index("wake")

    def test_top_level_commit_releases_everything(self):
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        kernel = run_programs(
            built.db,
            {
                "T1": make_t1(built.item(0), 1, built.item(1), 2),
                "T2": make_t2(built.item(0), 1, built.item(1), 2),
            },
        )
        releases = kernel.trace.of_kind("release")
        assert len(releases) == 2  # one per transaction
        assert kernel.locks.lock_count == 0

    def test_subtransaction_locks_retained_not_released(self):
        """Under the semantic protocol no lock disappears before the
        top-level release events."""
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        scheduler = Scheduler()
        kernel = TransactionManager(
            built.db, protocol=SemanticLockingProtocol(), scheduler=scheduler
        )
        counts = []

        def probe(node, phase):
            if phase == "post" and node.invocation.operation == "ShipOrder":
                counts.append(kernel.locks.lock_count)
            return None

        kernel.probe = probe

        async def t1(tx):
            await tx.call(built.item(0), "ShipOrder", 1)

        kernel.spawn("T1", t1)
        kernel.run()
        # Transaction + ShipOrder + Select + 3x atom ops + ChangeStatus
        # + its 2 leaf ops = 9 locks, all still held at ShipOrder end.
        assert counts == [9]

"""TCP wire-protocol tests: newline-JSON round trips against a live server.

A real :class:`WireServer` on an ephemeral port, a real
:class:`TCPClient` over a real socket — the full path a remote client
takes, including the stable error payloads of :mod:`repro.errors`
crossing the wire and reconstructing on the other side.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import RequestShed, error_from_payload
from repro.orderentry.schema import build_order_entry_database
from repro.server import Request, TCPClient, TransactionServer, WireServer


@pytest.fixture()
def served():
    server = TransactionServer(
        built=build_order_entry_database(n_items=2, orders_per_item=4),
        n_threads=2,
    ).start()
    wire = WireServer(server).start()
    try:
        yield server, wire
    finally:
        wire.stop()
        report = server.shutdown()
        assert report.clean, report.to_dict()


def client_for(wire: WireServer) -> TCPClient:
    host, port = wire.address
    return TCPClient(host, port, timeout=10.0)


class TestWireRoundTrip:
    def test_ping(self, served):
        _, wire = served
        with client_for(wire) as client:
            assert client.ping()

    def test_place_and_stock_check(self, served):
        _, wire = served
        with client_for(wire) as client:
            placed = client.request({"op": "place", "item": 0, "customer_no": 9})
            assert placed["status"] == "ok"
            assert isinstance(placed["result"], int)
            stock = client.request({"op": "stock-check", "item": 0})
            assert stock["status"] == "ok" and stock["result"] == 1000

    def test_pipelined_requests_answer_in_order(self, served):
        _, wire = served
        with client_for(wire) as client:
            for index in range(5):
                response = client.request(
                    {"op": "stock-check", "item": index % 2,
                     "request_id": f"p{index}"}
                )
                assert response["request_id"] == f"p{index}"
                assert response["status"] == "ok"

    def test_stats_op(self, served):
        _, wire = served
        with client_for(wire) as client:
            client.request({"op": "place", "item": 0})
            stats = client.stats()
            assert stats["requests"] >= 1
            assert "degraded" in stats and "draining" in stats

    def test_concurrent_connections(self, served):
        _, wire = served
        results = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            with client_for(wire) as client:
                response = client.request(
                    {"op": "place" if index % 2 else "stock-check",
                     "item": index % 2, "deadline": 5.0}
                )
            with lock:
                results.append(response)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15.0)
        assert len(results) == 8
        assert all(r["status"] in ("ok", "shed") for r in results)


class TestWireErrors:
    def test_unknown_op_carries_stable_code(self, served):
        _, wire = served
        with client_for(wire) as client:
            response = client.request({"op": "frobnicate"})
            assert response["status"] == "failed"
            assert response["error"]["code"] == "unknown-operation"
            exc = error_from_payload(response["error"])
            assert "frobnicate" in str(exc)

    def test_malformed_json_answers_instead_of_dropping(self, served):
        _, wire = served
        host, port = wire.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"this is not json\n")
            fh.flush()
            response = json.loads(fh.readline())
            assert response["status"] == "failed"
            assert "code" in response["error"]
            # The connection survives a bad line.
            fh.write(b'{"op": "ping"}\n')
            fh.flush()
            assert json.loads(fh.readline())["result"] == "pong"

    def test_non_object_json_rejected(self, served):
        _, wire = served
        host, port = wire.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"[1, 2, 3]\n")
            fh.flush()
            assert json.loads(fh.readline())["status"] == "failed"

    def test_blank_lines_ignored(self, served):
        _, wire = served
        host, port = wire.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"\n\n{\"op\": \"ping\"}\n")
            fh.flush()
            assert json.loads(fh.readline())["result"] == "pong"

    def test_shed_response_reconstructs_as_request_shed(self):
        server = TransactionServer(
            built=build_order_entry_database(n_items=2, orders_per_item=4),
            n_threads=2,
        ).start()
        wire = WireServer(server).start()
        try:
            server.degrade.force(True)
            server.admission.set_degraded(True)
            with client_for(wire) as client:
                response = client.request({"op": "place", "item": 0})
                assert response["status"] == "shed"
                assert response["retry_after"] > 0
                exc = error_from_payload(response["error"])
                assert isinstance(exc, RequestShed)
                assert exc.reason_code == "degraded-writes"
                assert exc.retry_after == response["retry_after"]
        finally:
            wire.stop()
            report = server.shutdown()
            assert report.clean, report.to_dict()


class TestWireErrorsBinding:
    def test_bound_port_raises_address_in_use_with_stable_code(self, served):
        from repro.errors import AddressInUseError

        _, wire = served
        host, port = wire.address
        with pytest.raises(AddressInUseError) as excinfo:
            WireServer(served[0], host=host, port=port).start()
        exc = excinfo.value
        assert exc.code == "address-in-use"
        assert f"{host}:{port}" in str(exc)
        # The original server is unharmed by the failed bind.
        with client_for(wire) as client:
            assert client.ping()


class TestWireLifecycle:
    def test_request_dict_round_trip(self):
        request = Request(op="place", item=1, order_no=3, customer_no=8,
                          quantity=2, deadline=0.5, request_id="x")
        assert Request.from_dict(request.to_dict()) == request

    def test_double_start_rejected(self, served):
        _, wire = served
        with pytest.raises(RuntimeError):
            wire.start()

    def test_stop_closes_listener(self):
        server = TransactionServer(
            built=build_order_entry_database(n_items=2, orders_per_item=4),
            n_threads=2,
        ).start()
        wire = WireServer(server).start()
        host, port = wire.address
        wire.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1.0)
        assert server.shutdown().clean

"""Unit and edge tests for the conflict-test decision caches.

Covers the cache keys (boolean cells are parameter-blind, predicate
cells key on interned invocation keys, state cells always bypass), the
relief cache's invalidation points (commit of the awaited node,
abort/discard of a member, lock reassignment), the leak-hygiene
invariants, and the behavioural contract that clearing a cache mid-run
never changes what a kernel does.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.conflict import test_conflict as fig9_conflict
from repro.core.kernel import TransactionManager, run_transactions
from repro.core.protocol import SemanticLockingProtocol
from repro.core.reliefcache import AncestorReliefCache
from repro.obs.cases import CASE1_RELIEF, CASE2_WAIT, CASE_TOPLEVEL_WAIT
from repro.obs.registry import MetricsRegistry
from repro.orderentry.schema import build_order_entry_database
from repro.runtime.scheduler import Scheduler
from repro.semantics.invocation import Invocation
from repro.semantics.memo import CommutativityMemo
from repro.txn.locks import LockTable
from repro.txn.transaction import NodeStatus

from tests.test_conflict import child, txn_root, world  # noqa: F401 (fixture)
from tests.helpers import examples
from tests.test_lock_differential import observables
from tests.test_properties import (
    N_ITEMS,
    ORDERS_PER_ITEM,
    make_program,
    seeds,
    workload,
)
from tests.test_state_dependent import build_account, withdrawers


def bound(cache):
    registry = MetricsRegistry()
    cache.bind_metrics(registry)
    return registry


class TestCommutativityMemo:
    def test_boolean_cell_is_parameter_blind(self, world):
        db, box, __ = world
        memo = CommutativityMemo()
        registry = bound(memo)
        # Add/Add is a boolean cell: different args share one memo slot.
        for k in range(5):
            commute, state = memo.commute(
                db, box.oid, Invocation("Add", (k,)), Invocation("Add", (k + 100,))
            )
            assert commute and not state
        snap = registry.snapshot()
        assert snap.counter("cache.commute_misses") == 1
        assert snap.counter("cache.commute_hits") == 4
        assert memo.size == 1

    def test_predicate_cell_keys_on_invocation_args(self, world):
        db, box, __ = world
        memo = CommutativityMemo()
        registry = bound(memo)
        # Add/Read is parameter-dependent: each distinct arg pair is its
        # own verdict; repeats hit.
        assert memo.commute(db, box.oid, Invocation("Add", (1,)), Invocation("Read", (2,)))[0]
        assert not memo.commute(db, box.oid, Invocation("Add", (1,)), Invocation("Read", (1,)))[0]
        assert memo.commute(db, box.oid, Invocation("Add", (1,)), Invocation("Read", (2,)))[0]
        snap = registry.snapshot()
        assert snap.counter("cache.commute_misses") == 2
        assert snap.counter("cache.commute_hits") == 1

    def test_undeclared_pair_is_constant_conflict_uncached(self, world):
        db, box, __ = world
        memo = CommutativityMemo()
        registry = bound(memo)
        assert memo.commute(db, box.oid, Invocation("Add", (1,)), Invocation("Nope", ())) == (
            False,
            False,
        )
        snap = registry.snapshot()
        assert snap.counter("cache.commute_misses") == 0
        assert memo.size == 0

    def test_matrix_mutation_invalidates_verdicts(self, world):
        db, box, __ = world
        memo = CommutativityMemo()
        assert memo.commute(db, box.oid, Invocation("Add", (1,)), Invocation("Add", (2,)))[0]
        box.spec.matrix.conflict("Add", "Add")
        assert not memo.commute(db, box.oid, Invocation("Add", (1,)), Invocation("Add", (2,)))[0]

    def test_state_cell_always_bypasses(self):
        db, account = build_account(100)
        memo = CommutativityMemo()
        registry = bound(memo)
        held = Invocation("Withdraw", (60,))
        requested = Invocation("Withdraw", (30,))

        def view_factory(target):
            from repro.semantics.compatibility import StateView

            return StateView(obj=account, held_invocations=(held,))

        commute, state = memo.commute(db, account.oid, held, requested, view_factory)
        assert commute and state
        # Drain the balance: the verdict must follow the live state, not
        # a cached copy of it.
        account.impl_component("balance").raw_put(50)
        commute, state = memo.commute(db, account.oid, held, requested, view_factory)
        assert not commute and state
        snap = registry.snapshot()
        assert snap.counter("cache.commute_bypasses") == 2
        assert snap.counter("cache.commute_hits") == 0
        assert memo.size == 0

    def test_clear_resets_but_preserves_verdicts(self, world):
        db, box, __ = world
        memo = CommutativityMemo()
        before = memo.commute(db, box.oid, Invocation("Add", (1,)), Invocation("Add", (2,)))
        memo.clear()
        assert memo.size == 0
        assert memo.commute(db, box.oid, Invocation("Add", (1,)), Invocation("Add", (2,))) == before


def conflict_with_cache(db, holder_leaf, requester_leaf, relief_cache, on_outcome=None):
    return fig9_conflict(
        db,
        holder_leaf, holder_leaf.invocation, holder_leaf.target,
        requester_leaf, requester_leaf.invocation, requester_leaf.target,
        relief_cache=relief_cache,
        on_outcome=on_outcome,
    )


class TestAncestorReliefCache:
    def make_case2_world(self, world):
        db, box, atom = world
        t1, t2 = txn_root(db, "T1"), txn_root(db, "T2")
        add = child(t1, box, "Add", 1)
        put = child(add, atom, "Put", "v")
        read = child(t2, box, "Read", 2)  # commutes with Add(1)
        get = child(read, atom, "Get")
        return db, add, put, get

    def test_case2_hit_then_commit_upgrades_to_case1(self, world):
        db, add, put, get = self.make_case2_world(world)
        cache = AncestorReliefCache()
        registry = bound(cache)
        outcomes = []
        assert conflict_with_cache(db, put, get, cache, outcomes.append) is add
        assert conflict_with_cache(db, put, get, cache, outcomes.append) is add
        # The commit of the awaited subtransaction drops the entry; the
        # recomputed verdict is case-1 relief (no conflict at all).
        add.status = NodeStatus.COMMITTED
        cache.on_commit(add)
        assert conflict_with_cache(db, put, get, cache, outcomes.append) is None
        assert conflict_with_cache(db, put, get, cache, outcomes.append) is None
        assert outcomes == [CASE2_WAIT, CASE2_WAIT, CASE1_RELIEF, CASE1_RELIEF]
        snap = registry.snapshot()
        assert snap.counter("cache.relief_hits") == 2
        assert snap.counter("cache.relief_misses") == 2
        assert snap.counter("cache.relief_invalidations") == 1
        cache.check_invariants()

    def test_case1_entry_survives_unrelated_commits(self, world):
        db, add, put, get = self.make_case2_world(world)
        add.status = NodeStatus.COMMITTED
        cache = AncestorReliefCache()
        registry = bound(cache)
        assert conflict_with_cache(db, put, get, cache) is None
        # Commit of the relieving ancestor does not disturb a case-1
        # entry: commits are irreversible, the verdict cannot change.
        cache.on_commit(add)
        assert cache.size == 1
        assert conflict_with_cache(db, put, get, cache) is None
        snap = registry.snapshot()
        assert snap.counter("cache.relief_hits") == 1
        assert snap.counter("cache.relief_invalidations") == 0
        cache.check_invariants()

    def test_abort_drops_member_entries(self, world):
        db, add, put, get = self.make_case2_world(world)
        cache = AncestorReliefCache()
        assert conflict_with_cache(db, put, get, cache) is add
        assert cache.size == 1
        cache.on_node_gone(put)  # the holder leaf's subtree is discarded
        assert cache.size == 0
        assert cache.referenced_nodes() == frozenset()
        cache.check_invariants()

    def test_toplevel_fallthrough_is_cached_on_holder_root(self, world):
        db, box, atom = world
        t1, t2 = txn_root(db, "T1"), txn_root(db, "T2")
        add = child(t1, box, "Add", 1)
        put = child(add, atom, "Put", "v")
        read = child(t2, box, "Read", 1)  # conflicts with Add(1)
        get = child(read, atom, "Get")
        cache = AncestorReliefCache()
        outcomes = []
        assert conflict_with_cache(db, put, get, cache, outcomes.append) is t1
        assert conflict_with_cache(db, put, get, cache, outcomes.append) is t1
        assert outcomes == [CASE_TOPLEVEL_WAIT, CASE_TOPLEVEL_WAIT]
        # top-level completion sweeps the entry out
        cache.on_node_gone(t1)
        assert cache.size == 0
        cache.check_invariants()

    def test_state_dependent_search_is_never_cached(self):
        db, account = build_account(100)
        t1, t2 = txn_root(db, "T1"), txn_root(db, "T2")
        w1 = child(t1, account, "Withdraw", 60)
        put = child(w1, account.impl_component("balance"), "Put", 40)
        w2 = child(t2, account, "Withdraw", 30)
        get = child(w2, account.impl_component("balance"), "Get")
        cache = AncestorReliefCache()
        registry = bound(cache)

        def view_factory(target):
            from repro.semantics.compatibility import StateView

            if target == account.oid:
                return StateView(obj=account, held_invocations=(w1.invocation,))
            return None

        def conflict():
            return fig9_conflict(
                db,
                put, put.invocation, put.target,
                get, get.invocation, get.target,
                view_factory=view_factory,
                relief_cache=cache,
            )

        # Funds cover both withdrawals: the chain search finds the
        # escrow pair commutative — but via a state cell, so nothing is
        # stored and the verdict tracks the balance.
        assert conflict() is w1
        assert cache.size == 0
        account.impl_component("balance").raw_put(50)
        assert conflict() is t1  # no longer covered: worst case
        snap = registry.snapshot()
        assert snap.counter("cache.relief_bypasses") == 2
        assert snap.counter("cache.relief_hits") == 0


class TestKernelInvalidationEdges:
    def test_protocol_routes_lifecycle_events(self, world):
        db, add, put, get = TestAncestorReliefCache().make_case2_world(world)
        protocol = SemanticLockingProtocol()
        protocol.bind(db)
        cache = protocol.relief_cache
        assert conflict_with_cache(db, put, get, cache) is add
        assert cache.size == 1
        protocol.on_node_event(put, "discard")
        assert cache.size == 0
        assert conflict_with_cache(db, put, get, cache) is add
        protocol.on_node_event(add, "commit")
        assert cache.size == 0
        cache.check_invariants()

    def test_reassign_hook_fires_with_old_owners(self, world):
        db, box, atom = world
        t1 = txn_root(db, "T1")
        sub = child(t1, box, "Add", 1)
        table = LockTable()
        seen = []
        table.on_locks_reassigned = lambda nodes: seen.append(set(nodes))
        table.grant(sub, box.oid, sub.invocation)
        moved = table.reassign_locks_to_parent(sub)
        assert [lock.node for lock in moved] == [t1]
        # the hook saw the *old* owner, before lock.node mutated
        assert seen == [{sub}]

    def test_reassignment_drops_relief_entries(self, world):
        db, add, put, get = TestAncestorReliefCache().make_case2_world(world)
        protocol = SemanticLockingProtocol()
        protocol.bind(db)
        cache = protocol.relief_cache
        assert conflict_with_cache(db, put, get, cache) is add
        assert cache.size == 1
        table = LockTable()
        table.on_locks_reassigned = protocol.on_locks_reassigned
        table.grant(put, put.target, put.invocation)
        table.reassign_locks_to_parent(put)
        assert cache.size == 0
        cache.check_invariants()

    def test_relief_cache_empty_after_kernel_run(self):
        """Every entry's members complete by end of run: no leaks."""
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        protocol = SemanticLockingProtocol()
        kernel = TransactionManager(
            built.db, protocol=protocol, scheduler=Scheduler(policy="random", seed=7)
        )
        specs = [("T1", 0, 0, 1, 1), ("T2", 0, 0, 1, 0), ("T1", 1, 1, 0, 1)]
        for i, spec in enumerate(specs):
            kernel.spawn(f"X{i}-{spec[0]}", make_program(spec, built))
        kernel.run()
        cache = protocol.relief_cache
        cache.check_invariants()
        # Wait-case entries must be gone (their awaited nodes completed);
        # only stable case-1 entries may remain.
        assert not cache._by_awaited

    def test_escrow_withdraw_bypasses_memo_in_kernel(self):
        db, account = build_account(100)
        kernel = run_transactions(
            db, withdrawers(account, [30, 30, 30]), protocol=SemanticLockingProtocol()
        )
        assert account.impl_component("balance").raw_get() == 10
        assert all(h.result == "ok" for h in kernel.handles.values())
        snap = kernel.obs.snapshot()
        assert snap.counter("cache.commute_bypasses") > 0


def _run_kernel(specs, seed, protocol, probe=None):
    built = build_order_entry_database(n_items=N_ITEMS, orders_per_item=ORDERS_PER_ITEM)
    kernel = TransactionManager(
        built.db, protocol=protocol, scheduler=Scheduler(policy="random", seed=seed)
    )
    if probe is not None:
        kernel.probe = probe
    for i, spec in enumerate(specs):
        kernel.spawn(f"X{i}-{spec[0]}", make_program(spec, built))
    kernel.run()
    return built, kernel


class TestCacheClearingProperty:
    @settings(max_examples=examples(25), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_mid_run_clear_never_changes_behaviour(self, specs, seed):
        """Dropping both caches at every action boundary is invisible:
        each cached answer must also be recomputable from scratch."""
        protocol = SemanticLockingProtocol()

        def clear_probe(node, phase):
            protocol.memo.clear()
            protocol.relief_cache.clear()

        built_c, kernel_c = _run_kernel(specs, seed, protocol, probe=clear_probe)
        built_u, kernel_u = _run_kernel(
            specs, seed, SemanticLockingProtocol(caching=False)
        )
        obs_c = observables(built_c, kernel_c)
        obs_u = observables(built_u, kernel_u)
        for key in obs_c:
            assert obs_c[key] == obs_u[key], f"{key} diverged"


class TestEscrowCachedVsUncached:
    def test_escrow_outcomes_identical(self):
        """State-dependent workloads: the bypass keeps cached and
        uncached escrow runs identical, balance included."""
        for seed in range(8):
            results = []
            for caching in (True, False):
                db, account = build_account(70)
                kernel = run_transactions(
                    db,
                    withdrawers(account, [30, 40, 50]),
                    protocol=SemanticLockingProtocol(caching=caching),
                    policy="random",
                    seed=seed,
                )
                results.append(
                    (
                        account.impl_component("balance").raw_get(),
                        sorted(str(h.result) for h in kernel.handles.values()),
                        [e.to_dict() for e in kernel.trace],
                    )
                )
            assert results[0] == results[1], seed

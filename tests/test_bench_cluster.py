"""Unit tests for the cluster-sweep bench machinery (no cluster boot).

The expensive path — booting 1/2/4 real shard processes — is the CI
``cluster-smoke`` job; here we pin the deterministic pieces: schedule
generation, the monotonic-goodput verdict, and the ``BENCH_cluster.json``
compare gate including its drift and schema guards.
"""

from __future__ import annotations

import pytest

from repro.bench.cluster import (
    BASELINE_SHARD_COUNTS,
    BRANCH_SWEEP_COUNTS,
    BRANCH_SWEEP_SHARDS,
    BranchLatencyPoint,
    ClusterBenchConfig,
    ClusterLoopResult,
    branch_latency_section,
    compare_cluster,
    generate_cluster_arrivals,
    goodput_monotonic,
)


def branch_point(branches: int, parallel_p95: float, sequential_p95: float) -> BranchLatencyPoint:
    return BranchLatencyPoint(
        branches=branches,
        samples=30,
        parallel_p50=parallel_p95 * 0.9,
        parallel_p95=parallel_p95,
        sequential_p50=sequential_p95 * 0.9,
        sequential_p95=sequential_p95,
    )


def result_with(n_shards: int, ok: int, elapsed: float = 1.0) -> ClusterLoopResult:
    return ClusterLoopResult(
        n_shards=n_shards, config=ClusterBenchConfig(), ok=ok, offered=ok,
        elapsed=elapsed,
    )


class TestArrivalSchedule:
    def test_schedule_is_deterministic(self):
        config = ClusterBenchConfig()
        first = generate_cluster_arrivals(config)
        second = generate_cluster_arrivals(config)
        assert [(t, r.to_dict()) for t, r in first] == [
            (t, r.to_dict()) for t, r in second
        ]

    def test_offsets_are_sorted_and_bounded(self):
        arrivals = generate_cluster_arrivals(ClusterBenchConfig())
        offsets = [offset for offset, _ in arrivals]
        assert offsets == sorted(offsets)
        assert all(0 <= offset for offset in offsets)

    def test_cross_fraction_is_roughly_honoured(self):
        config = ClusterBenchConfig(rate=500.0, duration=4.0, cross_fraction=0.2)
        arrivals = generate_cluster_arrivals(config)
        cross = sum(
            1 for _, request in arrivals
            if (request.lines is not None and len(request.lines) > 1)
            or (request.items is not None and len(request.items) > 1)
        )
        fraction = cross / len(arrivals)
        assert 0.1 <= fraction <= 0.3, fraction

    def test_rejects_nonsense_config(self):
        with pytest.raises(ValueError):
            ClusterBenchConfig(rate=0.0).validate()
        with pytest.raises(ValueError):
            ClusterBenchConfig(cross_fraction=1.5).validate()


class TestMonotonicVerdict:
    def test_clean_staircase_passes(self):
        results = [result_with(1, 50), result_with(2, 80), result_with(4, 140)]
        assert goodput_monotonic(results)

    def test_scale_down_fails(self):
        results = [result_with(1, 50), result_with(2, 80), result_with(4, 60)]
        assert not goodput_monotonic(results)

    def test_small_jitter_is_tolerated(self):
        results = [result_with(1, 100), result_with(2, 98), result_with(4, 140)]
        assert goodput_monotonic(results)


class TestCompareGate:
    def synthetic_doc(self) -> dict:
        doc = {
            "schema": "repro-bench-cluster",
            "schema_version": 2,
            "base_config": ClusterBenchConfig().to_dict(),
            "goodput_monotonic": True,
            "workloads": {},
        }
        for n_shards, goodput in zip(BASELINE_SHARD_COUNTS, (50.0, 80.0, 140.0)):
            result = result_with(n_shards, int(goodput))
            doc["workloads"][f"s{n_shards}"] = {
                "config": {"n_shards": n_shards, "rate": 280.0},
                "metrics": result.metrics_record(),
            }
        doc["branch_latency"] = branch_latency_section(
            [
                branch_point(1, 0.025, 0.024),
                branch_point(2, 0.028, 0.050),
                branch_point(4, 0.035, 0.100),
            ]
        )
        return doc

    def test_identical_docs_pass(self):
        doc = self.synthetic_doc()
        comparison = compare_cluster(doc, doc)
        assert comparison.ok, comparison.summary()
        gated = [row for row in comparison.rows if row.gated]
        assert {row.metric for row in gated} == {
            "goodput", "shard_down", "parallel_p95",
        }

    def test_goodput_collapse_fails_the_gate(self):
        baseline = self.synthetic_doc()
        fresh = self.synthetic_doc()
        fresh["workloads"]["s4"]["metrics"]["goodput"] = 10.0
        comparison = compare_cluster(baseline, fresh)
        assert not comparison.ok

    def test_nonmonotonic_fresh_sweep_is_an_error(self):
        baseline = self.synthetic_doc()
        fresh = self.synthetic_doc()
        fresh["goodput_monotonic"] = False
        comparison = compare_cluster(baseline, fresh)
        assert not comparison.ok
        assert any("monotonic" in error for error in comparison.errors)

    def test_shard_down_regression_fails_the_gate(self):
        baseline = self.synthetic_doc()
        fresh = self.synthetic_doc()
        fresh["workloads"]["s2"]["metrics"]["shard_down"] = 3.0
        comparison = compare_cluster(baseline, fresh)
        assert not comparison.ok

    def test_config_drift_is_an_error(self):
        baseline = self.synthetic_doc()
        fresh = self.synthetic_doc()
        fresh["workloads"]["s2"]["config"]["rate"] = 999.0
        comparison = compare_cluster(baseline, fresh)
        assert not comparison.ok
        assert any("drifted" in error for error in comparison.errors)

    def test_schema_mismatch_is_an_error(self):
        baseline = self.synthetic_doc()
        fresh = self.synthetic_doc()
        fresh["schema_version"] = 99
        comparison = compare_cluster(baseline, fresh)
        assert not comparison.ok

    def test_sequential_parity_is_an_error(self):
        # The whole point of the fan-out: at the widest branch count,
        # parallel prepare must beat sequential p95.
        baseline = self.synthetic_doc()
        fresh = self.synthetic_doc()
        fresh["branch_latency"]["parallel_beats_sequential"] = False
        comparison = compare_cluster(baseline, fresh)
        assert not comparison.ok
        assert any("parallel" in error for error in comparison.errors)

    def test_parallel_p95_blowup_fails_the_gate(self):
        baseline = self.synthetic_doc()
        fresh = self.synthetic_doc()
        # Fan-out silently gone sequential-and-then-some: far past the
        # generous rel=1.5 / abs=0.05 tolerance band.
        fresh["branch_latency"]["points"]["b4"]["metrics"]["parallel_p95"] = 0.25
        comparison = compare_cluster(baseline, fresh)
        assert not comparison.ok
        bad = [r for r in comparison.rows if r.gated and not r.ok]
        assert [r.workload for r in bad] == ["branch:b4"]

    def test_committed_baseline_matches_the_collector_shape(self):
        import json
        import os

        path = os.path.join(
            os.path.dirname(__file__), os.pardir, "BENCH_cluster.json"
        )
        with open(path) as fh:
            committed = json.load(fh)
        assert committed["schema"] == "repro-bench-cluster"
        assert committed["schema_version"] == 2
        assert committed["goodput_monotonic"] is True
        assert set(committed["workloads"]) == {
            f"s{n}" for n in BASELINE_SHARD_COUNTS
        }
        branch = committed["branch_latency"]
        assert branch["n_shards"] == BRANCH_SWEEP_SHARDS
        assert set(branch["points"]) == {f"b{k}" for k in BRANCH_SWEEP_COUNTS}
        # The committed evidence for the acceptance criterion: a 4-branch
        # cross-shard request is faster under parallel prepare.
        assert branch["parallel_beats_sequential"] is True
        widest = branch["points"][f"b{max(BRANCH_SWEEP_COUNTS)}"]["metrics"]
        assert widest["parallel_p95"] < widest["sequential_p95"]

"""Property-based tests for crash recovery.

For random workloads, random interleavings, and random crash points:
recovering the surviving write-ahead log onto a restored backup must
yield the state of a serial execution of exactly the durably-committed
transactions (up to surrogate order-number renaming), and recovery must
be idempotent in its classification.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.kernel import TransactionManager, run_transactions
from repro.orderentry.schema import ITEM_TYPE, ORDER_TYPE, build_order_entry_database
from repro.orderentry.transactions import make_new_order_txn, make_t1, make_t2
from repro.recovery import WriteAheadLog, recover
from repro.recovery.wal import TxnStatusRecord
from repro.runtime.scheduler import Scheduler

from tests.helpers import examples
from tests.test_properties import canonical_state

TYPE_SPECS = {"Item": ITEM_TYPE, "Order": ORDER_TYPE}
N_ITEMS = 2
ORDERS = 2

item_idx = st.integers(0, N_ITEMS - 1)
order_no = st.integers(1, ORDERS)

txn_spec = st.one_of(
    st.tuples(st.just("T1"), item_idx, order_no, item_idx, order_no),
    st.tuples(st.just("T2"), item_idx, order_no, item_idx, order_no),
    st.tuples(st.just("T0"), item_idx, st.integers(100, 104), st.integers(1, 3)),
)


def build():
    return build_order_entry_database(n_items=N_ITEMS, orders_per_item=ORDERS)


def make_program(spec, built):
    kind = spec[0]
    if kind == "T1":
        __, i1, o1, i2, o2 = spec
        return make_t1(built.item(i1), o1, built.item(i2), o2)
    if kind == "T2":
        __, i1, o1, i2, o2 = spec
        return make_t2(built.item(i1), o1, built.item(i2), o2)
    __, i1, customer, qty = spec
    return make_new_order_txn(built.item(i1), customer, qty)


class TestRecoveryProperties:
    @settings(max_examples=examples(50), deadline=None)
    @given(
        specs=st.lists(txn_spec, min_size=1, max_size=3),
        crash_at=st.integers(0, 120),
        seed=st.integers(0, 1000),
    )
    def test_crash_recovery_matches_winners_oracle(self, specs, crash_at, seed):
        built = build()
        wal = WriteAheadLog()
        kernel = TransactionManager(
            built.db, scheduler=Scheduler(policy="random", seed=seed), wal=wal
        )
        names = []
        for i, spec in enumerate(specs):
            name = f"X{i}-{spec[0]}"
            names.append(name)
            kernel.spawn(name, make_program(spec, built))
        finished = kernel.scheduler.run(max_steps=crash_at)
        if not finished:
            kernel.scheduler.shutdown()

        restored = build()
        report = recover(restored.db, wal, TYPE_SPECS)

        winners = [
            r.txn
            for r in wal
            if isinstance(r, TxnStatusRecord) and r.status == "commit"
        ]
        oracle = build()
        name_to_spec = dict(zip(names, specs))
        for winner in winners:
            run_transactions(
                oracle.db, {winner: make_program(name_to_spec[winner], oracle)}
            )
        assert canonical_state(restored.db) == canonical_state(oracle.db), str(report)

    @settings(max_examples=examples(25), deadline=None)
    @given(
        specs=st.lists(txn_spec, min_size=1, max_size=2),
        crash_at=st.integers(0, 80),
    )
    def test_analysis_is_complete(self, specs, crash_at):
        """Every logged transaction is classified exactly once."""
        built = build()
        wal = WriteAheadLog()
        kernel = TransactionManager(built.db, scheduler=Scheduler(), wal=wal)
        for i, spec in enumerate(specs):
            kernel.spawn(f"X{i}", make_program(spec, built))
        if not kernel.scheduler.run(max_steps=crash_at):
            kernel.scheduler.shutdown()
        restored = build()
        report = recover(restored.db, wal, TYPE_SPECS)
        classified = set(report.winners) | set(report.aborted) | set(report.losers)
        assert classified == set(wal.transactions())
        assert len(report.winners) + len(report.aborted) + len(report.losers) == len(
            classified
        )

"""Phantom protection through set-operation semantics.

The generic set matrix makes ``Scan`` conflict with ``Insert``/``Remove``
and keyed operations conflict exactly on equal keys — so repeatable
scans (no phantoms) fall out of ordinary semantic locking, without a
separate predicate-lock mechanism.
"""

from __future__ import annotations

from repro.core.serializability import is_semantically_serializable
from repro.orderentry.schema import build_order_entry_database
from repro.orderentry.transactions import make_new_order_txn

from tests.helpers import run_programs


class TestRepeatableScan:
    def test_double_scan_sees_no_phantom(self):
        """A transaction scanning Orders twice must count the same
        members both times, despite a concurrent NewOrder."""
        for seed in range(8):
            built = build_order_entry_database(n_items=1, orders_per_item=2)
            orders_set = built.item(0).impl_component("Orders")

            async def double_scan(tx):
                first = len(await tx.scan(orders_set))
                for __ in range(6):
                    await tx.pause()
                second = len(await tx.scan(orders_set))
                return (first, second)

            kernel = run_programs(
                built.db,
                {
                    "SCAN": double_scan,
                    "NEW": make_new_order_txn(built.item(0), 500, 1),
                },
                policy="random",
                seed=seed,
            )
            result = kernel.handles["SCAN"].result
            if result is not None:
                first, second = result
                assert first == second, f"phantom under seed {seed}: {result}"
            assert is_semantically_serializable(kernel.history(), db=built.db)

    def test_scan_blocks_insert_until_scanner_done(self):
        """Direct Scan (bypassing TotalPayment) vs a NewOrder's Insert:
        the insert must wait for the scanner's commit (the Scan lock is
        held by a top-level action — no commutative ancestor relief)."""
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        orders_set = built.item(0).impl_component("Orders")

        async def scanner(tx):
            members = await tx.scan(orders_set)
            for __ in range(8):
                await tx.pause()
            return len(members)

        kernel = run_programs(
            built.db,
            {
                "SCAN": scanner,
                "NEW": make_new_order_txn(built.item(0), 500, 1),
            },
        )
        insert_blocks = [
            e
            for e in kernel.trace.of_kind("block")
            if e.txn == "NEW" and "Insert" in str(e.detail.get("mode"))
        ]
        assert insert_blocks, "Insert should have waited for the scan"
        assert insert_blocks[0].detail["waits_for"] == ["SCAN"]
        assert kernel.handles["SCAN"].result == 1  # saw the old state

    def test_totalpayment_scan_gets_ancestor_relief(self):
        """The same Scan/Insert conflict *inside* TotalPayment/NewOrder
        is relieved at the Item level (both methods on the same item,
        TotalPayment/NewOrder compatible): the insert waits only for the
        TotalPayment *subtransaction*, not the whole transaction."""
        from repro.core.kernel import TransactionManager
        from repro.runtime.scheduler import Scheduler

        built = build_order_entry_database(n_items=1, orders_per_item=1)
        scheduler = Scheduler()
        kernel = TransactionManager(built.db, scheduler=scheduler)
        gate = scheduler.create_signal()

        def probe(node, phase):
            # suspend T5 between its Scan and its status reads — with
            # TotalPayment itself still active...
            if (
                phase == "post"
                and node.invocation.operation == "Scan"
                and node.top_level_name == "T5"
                and not gate.done
            ):
                return gate
            # ...and release it the moment NEW's Insert files its lock
            # request (same scheduler step: the request queues first).
            if (
                phase == "pre"
                and node.invocation.operation == "Insert"
                and node.top_level_name == "NEW"
            ):
                gate.fire()
            return None

        kernel.probe = probe

        async def t5(tx):
            return await tx.call(built.item(0), "TotalPayment")

        async def newer(tx):
            return await tx.call(built.item(0), "NewOrder", 500, 1)

        kernel.spawn("T5", t5)
        kernel.spawn("NEW", newer)
        kernel.run()

        insert_blocks = [
            e
            for e in kernel.trace.of_kind("block")
            if e.txn == "NEW" and "Insert" in str(e.detail.get("mode"))
        ]
        assert insert_blocks
        history = kernel.history()
        total = next(r for r in history.records if r.operation == "TotalPayment")
        # case 2: the blocker is the TotalPayment subtransaction
        assert insert_blocks[0].detail["waits_for"] == [total.node_id]
        assert kernel.handles["NEW"].committed
        assert kernel.handles["T5"].committed

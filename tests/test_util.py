"""Unit tests for the util package: ids, sequence counter, trace log."""

from __future__ import annotations

from repro.util.ids import IdGenerator
from repro.util.seq import SequenceCounter
from repro.util.tracelog import TraceEvent, TraceLog


class TestIdGenerator:
    def test_per_prefix_counters(self):
        gen = IdGenerator()
        assert gen.next_number("a") == 1
        assert gen.next_number("a") == 2
        assert gen.next_number("b") == 1

    def test_next_id_format(self):
        gen = IdGenerator()
        assert gen.next_id("txn") == "txn-1"
        assert gen.next_id("txn") == "txn-2"

    def test_peek_does_not_advance(self):
        gen = IdGenerator()
        assert gen.peek("x") == 0
        gen.next_number("x")
        assert gen.peek("x") == 1
        assert gen.peek("x") == 1

    def test_independent_instances(self):
        a, b = IdGenerator(), IdGenerator()
        a.next_number("p")
        assert b.peek("p") == 0


class TestSequenceCounter:
    def test_tick_monotone(self):
        seq = SequenceCounter()
        values = [seq.tick() for __ in range(5)]
        assert values == [1, 2, 3, 4, 5]
        assert seq.value == 5

    def test_custom_start(self):
        seq = SequenceCounter(start=100)
        assert seq.tick() == 101


class TestTraceLog:
    def event(self, seq, kind, txn="T1", node="n1", **detail):
        return TraceEvent(seq=seq, kind=kind, node=node, txn=txn, detail=detail)

    def test_emit_and_iterate(self):
        log = TraceLog()
        log.emit(self.event(1, "grant"))
        log.emit(self.event(2, "block"))
        assert len(log) == 2
        assert [e.kind for e in log] == ["grant", "block"]

    def test_of_kind(self):
        log = TraceLog()
        for i, kind in enumerate(["grant", "block", "grant", "commit"]):
            log.emit(self.event(i, kind))
        assert [e.seq for e in log.of_kind("grant")] == [0, 2]
        assert [e.seq for e in log.of_kind("grant", "commit")] == [0, 2, 3]

    def test_for_txn(self):
        log = TraceLog()
        log.emit(self.event(1, "grant", txn="A"))
        log.emit(self.event(2, "grant", txn="B"))
        assert [e.txn for e in log.for_txn("A")] == ["A"]

    def test_clear(self):
        log = TraceLog()
        log.emit(self.event(1, "grant"))
        log.clear()
        assert len(log) == 0

    def test_str(self):
        text = str(self.event(7, "block", target="Atom#3"))
        assert "block" in text and "T1" in text and "Atom#3" in text

"""Wire-payload round-tripping for the exception hierarchy.

The transaction server ships kernel errors to clients as JSON payloads;
these tests pin the contract: every public error class has a stable
machine-readable code, serialises to a JSON-safe dict, and decodes back
to the same class, message, and structured fields.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    ERROR_CODES,
    AggregateWorkerError,
    CompensationError,
    CrashPoint,
    DeadlineExceeded,
    DeadlockError,
    DuplicateRecordError,
    LockTimeout,
    ProtocolViolation,
    ReproError,
    RequestShed,
    RetryExhausted,
    RuntimeEngineError,
    SchemaError,
    TransactionAborted,
    TransactionError,
    UnknownObjectError,
    UnknownOperationError,
    WorkloadError,
    error_from_payload,
    error_to_payload,
)

SAMPLES = [
    ReproError("plain failure"),
    SchemaError("duplicate method 'Pay'"),
    UnknownObjectError("oid 42 is not live"),
    DuplicateRecordError("oid 42 allocated twice"),
    UnknownOperationError("no operation 'Frob' on Item"),
    TransactionError("generic transaction trouble"),
    TransactionAborted("T1", "user rollback"),
    DeadlockError("T2", ("T2", "T3", "T2")),
    LockTimeout("T3", "item-0", 12.5),
    RetryExhausted("T4", "T4.2.1", 3),
    DeadlineExceeded("req-9", 0.25),
    RequestShed("queue-full", 0.05, "write queue at bound"),
    ProtocolViolation("lock released twice"),
    CompensationError("inverse UnshipOrder failed"),
    RuntimeEngineError("all tasks blocked, no cycle"),
    WorkloadError("zipf_s must be positive"),
    CrashPoint("step:7", "injected"),
]


@pytest.mark.parametrize("exc", SAMPLES, ids=lambda e: type(e).__name__)
def test_round_trip_preserves_class_and_message(exc):
    payload = error_to_payload(exc)
    decoded = error_from_payload(payload)
    assert type(decoded) is type(exc)
    assert str(decoded) == str(exc)
    assert payload["code"] == type(exc).code


@pytest.mark.parametrize("exc", SAMPLES, ids=lambda e: type(e).__name__)
def test_payload_is_json_safe(exc):
    payload = error_to_payload(exc)
    rehydrated = json.loads(json.dumps(payload))
    decoded = error_from_payload(rehydrated)
    assert type(decoded) is type(exc)
    assert str(decoded) == str(exc)


def test_structured_fields_survive():
    dl = error_from_payload(error_to_payload(DeadlockError("T2", ("T2", "T3", "T2"))))
    assert dl.txn_name == "T2"
    assert dl.cycle == ("T2", "T3", "T2")

    lt = error_from_payload(error_to_payload(LockTimeout("T3", "item-0", 12.5)))
    assert (lt.txn_name, lt.target, lt.waited) == ("T3", "item-0", 12.5)

    re_ = error_from_payload(error_to_payload(RetryExhausted("T4", "T4.2.1", 3)))
    assert (re_.txn_name, re_.node_id, re_.attempts) == ("T4", "T4.2.1", 3)

    de = error_from_payload(error_to_payload(DeadlineExceeded("req-9", 0.25)))
    assert (de.txn_name, de.budget) == ("req-9", 0.25)

    shed = error_from_payload(error_to_payload(RequestShed("draining", 1.5)))
    assert (shed.reason_code, shed.retry_after) == ("draining", 1.5)

    cp = error_from_payload(error_to_payload(CrashPoint("wal:3", "mid-append")))
    assert (cp.site, cp.detail) == ("wal:3", "mid-append")


def test_aggregate_round_trips_nested_errors():
    inner = (
        LockTimeout("T1", "item-0", 4.0),
        TransactionAborted("T2", "wound by T1"),
    )
    agg = AggregateWorkerError("2 workers failed", inner)
    decoded = error_from_payload(error_to_payload(agg))
    assert type(decoded) is AggregateWorkerError
    assert str(decoded) == str(agg)  # summary not re-appended
    assert [type(e) for e in decoded.errors] == [LockTimeout, TransactionAborted]
    assert decoded.errors[0].target == "item-0"


def test_codes_are_unique_and_stable():
    # One class per code; renaming/renumbering a code is a wire break.
    assert len(ERROR_CODES) == len(set(ERROR_CODES))
    for code, cls in ERROR_CODES.items():
        assert cls.code == code
    # Spot-pin a few codes that external tooling depends on.
    assert LockTimeout.code == "lock-timeout"
    assert RequestShed.code == "request-shed"
    assert DeadlineExceeded.code == "deadline-exceeded"
    assert AggregateWorkerError.code == "aggregate-worker-error"


def test_foreign_exception_wraps_as_internal_error():
    payload = error_to_payload(ValueError("boom"))
    assert payload["code"] == "internal-error"
    assert payload["type"] == "ValueError"
    decoded = error_from_payload(payload)
    assert type(decoded) is ReproError
    assert "boom" in str(decoded)


def test_unknown_code_degrades_to_base_error():
    decoded = error_from_payload({"code": "from-the-future", "message": "hi"})
    assert type(decoded) is ReproError
    assert str(decoded) == "hi"

"""Unit tests for the waits-for graph and cycle detection."""

from __future__ import annotations

from repro.txn.waits import WaitsForGraph


class TestEdges:
    def test_set_and_clear(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B", "C"})
        assert g.waits_of("A") == {"B", "C"}
        g.clear_waits("A")
        assert g.waits_of("A") == frozenset()

    def test_self_edges_dropped(self):
        g = WaitsForGraph()
        g.set_waits("A", {"A", "B"})
        assert g.waits_of("A") == {"B"}

    def test_remove_transaction(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("C", {"A"})
        g.remove_transaction("A")
        assert g.waits_of("A") == frozenset()
        assert g.waits_of("C") == frozenset()

    def test_edge_count(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B", "C"})
        g.set_waits("B", {"C"})
        assert g.edge_count == 3


class TestCycles:
    def test_no_cycle(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("B", {"C"})
        assert g.find_cycle_through("A") is None
        assert g.find_any_cycle() is None

    def test_two_cycle(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("B", {"A"})
        cycle = g.find_cycle_through("A")
        assert cycle is not None
        assert set(cycle) == {"A", "B"}

    def test_three_cycle(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("B", {"C"})
        g.set_waits("C", {"A"})
        cycle = g.find_cycle_through("B")
        assert cycle is not None
        assert set(cycle) == {"A", "B", "C"}

    def test_cycle_must_pass_through_start(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("B", {"C"})
        g.set_waits("C", {"B"})  # cycle B<->C not through A
        assert g.find_cycle_through("A") is None
        assert g.find_any_cycle() is not None

    def test_deterministic_cycle_report(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B", "C"})
        g.set_waits("B", {"A"})
        g.set_waits("C", {"A"})
        # sorted neighbour order: B explored before C
        assert g.find_cycle_through("A") == ["A", "B"]

    def test_find_any_cycle_empty_graph(self):
        assert WaitsForGraph().find_any_cycle() is None

    def test_branching_graph_with_deep_cycle(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B", "D"})
        g.set_waits("B", {"C"})
        g.set_waits("D", {"E"})
        g.set_waits("E", {"A"})
        cycle = g.find_cycle_through("A")
        assert cycle == ["A", "D", "E"]

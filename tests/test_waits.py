"""Unit tests for the waits-for graph and cycle detection."""

from __future__ import annotations

from repro.obs import MetricsRegistry
from repro.txn.waits import WaitsForGraph


class TestEdges:
    def test_set_and_clear(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B", "C"})
        assert g.waits_of("A") == {"B", "C"}
        g.clear_waits("A")
        assert g.waits_of("A") == frozenset()

    def test_self_edges_dropped(self):
        g = WaitsForGraph()
        g.set_waits("A", {"A", "B"})
        assert g.waits_of("A") == {"B"}

    def test_remove_transaction(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("C", {"A"})
        g.remove_transaction("A")
        assert g.waits_of("A") == frozenset()
        assert g.waits_of("C") == frozenset()

    def test_edge_count(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B", "C"})
        g.set_waits("B", {"C"})
        assert g.edge_count == 3


class TestCycles:
    def test_no_cycle(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("B", {"C"})
        assert g.find_cycle_through("A") is None
        assert g.find_any_cycle() is None

    def test_two_cycle(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("B", {"A"})
        cycle = g.find_cycle_through("A")
        assert cycle is not None
        assert set(cycle) == {"A", "B"}

    def test_three_cycle(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("B", {"C"})
        g.set_waits("C", {"A"})
        cycle = g.find_cycle_through("B")
        assert cycle is not None
        assert set(cycle) == {"A", "B", "C"}

    def test_cycle_must_pass_through_start(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        g.set_waits("B", {"C"})
        g.set_waits("C", {"B"})  # cycle B<->C not through A
        assert g.find_cycle_through("A") is None
        assert g.find_any_cycle() is not None

    def test_deterministic_cycle_report(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B", "C"})
        g.set_waits("B", {"A"})
        g.set_waits("C", {"A"})
        # sorted neighbour order: B explored before C
        assert g.find_cycle_through("A") == ["A", "B"]

    def test_find_any_cycle_empty_graph(self):
        assert WaitsForGraph().find_any_cycle() is None

    def test_branching_graph_with_deep_cycle(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B", "D"})
        g.set_waits("B", {"C"})
        g.set_waits("D", {"E"})
        g.set_waits("E", {"A"})
        cycle = g.find_cycle_through("A")
        assert cycle == ["A", "D", "E"]


class TestMetricsIntegration:
    """The waits.edges gauge and waits.cycle_checks counter invariants."""

    def test_edge_gauge_tracks_every_mutation(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("waits.edges")
        g = WaitsForGraph(registry)
        assert gauge.value == 0

        g.set_waits("A", {"B", "C"})
        assert gauge.value == g.edge_count == 2
        g.set_waits("B", {"C"})
        assert gauge.value == g.edge_count == 3
        g.clear_waits("A")
        assert gauge.value == g.edge_count == 1
        g.remove_transaction("C")
        assert gauge.value == g.edge_count == 0
        assert gauge.hwm == 3

    def test_self_edges_never_counted(self):
        registry = MetricsRegistry()
        g = WaitsForGraph(registry)
        g.set_waits("A", {"A", "B"})
        assert registry.gauge("waits.edges").value == 1

    def test_remove_drops_incoming_and_outgoing_edges(self):
        registry = MetricsRegistry()
        g = WaitsForGraph(registry)
        g.set_waits("A", {"B"})
        g.set_waits("B", {"C"})
        g.set_waits("C", {"A"})
        g.remove_transaction("A")
        assert g.edge_count == 1  # only B -> C survives
        assert registry.gauge("waits.edges").value == 1

    def test_rebuild_resets_gauge_but_keeps_hwm(self):
        """A fresh graph on the same registry must zero the live value
        while the run-wide high-water mark survives in the registry's
        gauge.  (The kernel now maintains its graph incrementally, but
        construct-over-the-same-registry remains part of the API.)"""
        registry = MetricsRegistry()
        g = WaitsForGraph(registry)
        g.set_waits("A", {"B", "C", "D"})
        rebuilt = WaitsForGraph(registry)
        gauge = registry.gauge("waits.edges")
        assert gauge.value == 0
        assert gauge.hwm == 3
        assert rebuilt.edge_count == 0

    def test_cycle_checks_counted_including_backstop_scan(self):
        registry = MetricsRegistry()
        counter = registry.counter("waits.cycle_checks")
        g = WaitsForGraph(registry)
        g.set_waits("A", {"B"})
        g.set_waits("B", {"C"})
        g.find_cycle_through("A")
        assert counter.value == 1
        # find_any_cycle scans via find_cycle_through per start node
        g.find_any_cycle()
        assert counter.value == 3

    def test_three_txn_ring_detected_with_metrics_bound(self):
        registry = MetricsRegistry()
        g = WaitsForGraph(registry)
        g.set_waits("A", {"B"})
        g.set_waits("B", {"C"})
        g.set_waits("C", {"A"})
        assert registry.gauge("waits.edges").value == 3
        cycle = g.find_cycle_through("A")
        assert cycle is not None and set(cycle) == {"A", "B", "C"}
        assert registry.counter("waits.cycle_checks").value == 1

    def test_unbound_graph_has_no_instruments(self):
        g = WaitsForGraph()
        g.set_waits("A", {"B"})
        assert g.find_cycle_through("A") is None  # no counter, no crash


def _expected_edges(kernel) -> dict[str, set[str]]:
    """The waits-for edges implied by the live lock queues."""
    expected: dict[str, set[str]] = {}
    for pending in kernel.locks.iter_pending():
        waiter = pending.node.top_level_name
        holders = {b.top_level_name for b in pending.blockers} - {waiter}
        if holders:
            expected[waiter] = holders
    return expected


def _actual_edges(kernel) -> dict[str, set[str]]:
    return {w: set(hs) for w, hs in kernel.waits._edges.items() if hs}


class TestIncrementalGraphInvariant:
    """The incrementally maintained graph must always equal the graph a
    full rebuild from the queues would produce — in particular across
    cancellations (abort unwinding and the wound-wait mass cancel),
    which used to leave stale ``pending.blockers`` behind."""

    def _run_checked(self, deadlock_policy, programs_factory, seed=None):
        from repro.core.kernel import TransactionManager
        from repro.runtime.scheduler import Scheduler

        db, programs = programs_factory()
        policy = "random" if seed is not None else "fifo"
        kernel = TransactionManager(
            db,
            scheduler=Scheduler(policy=policy, seed=seed),
            deadlock_policy=deadlock_policy,
        )
        checks = {"n": 0}

        def probe(node, phase):
            assert _actual_edges(kernel) == _expected_edges(kernel)
            kernel.locks.check_invariants()
            checks["n"] += 1
            return None

        kernel.probe = probe
        for name, program in programs.items():
            kernel.spawn(name, program)
        kernel.run()
        assert checks["n"] > 0
        assert _actual_edges(kernel) == {} == _expected_edges(kernel)
        assert kernel.waits.edge_count == 0
        return kernel

    @staticmethod
    def _opposing_writes():
        from repro.objects.database import Database

        db = Database()
        x = db.new_atom("x", 0)
        y = db.new_atom("y", 0)
        db.attach_child(x)
        db.attach_child(y)

        async def ab(tx):
            await tx.put(x, "A")
            await tx.pause()
            await tx.put(y, "A")
            return "A"

        async def ba(tx):
            await tx.put(y, "B")
            await tx.pause()
            await tx.put(x, "B")
            return "B"

        return db, {"A": ab, "B": ba}

    def test_cancel_during_wound_leaves_no_stale_edges(self):
        """Wound-wait mass-cancels the victim's queued requests; its
        edges (and blocker-index entries) must vanish with them."""
        kernel = self._run_checked("wound-wait", self._opposing_writes)
        assert kernel.handles["A"].committed
        assert kernel.handles["B"].aborted  # wounded while blocked

    def test_cancel_during_wait_die(self):
        kernel = self._run_checked("wait-die", self._opposing_writes)
        assert kernel.handles["B"].aborted

    def test_cancel_during_detection_victim_abort(self):
        kernel = self._run_checked("detect", self._opposing_writes)
        outcomes = sorted(
            (h.committed, h.aborted) for h in kernel.handles.values()
        )
        assert (True, False) in outcomes  # at least one side commits

    def test_contended_workload_under_wound_wait(self):
        def factory():
            from repro.orderentry.workload import OrderEntryWorkload, WorkloadConfig

            workload = OrderEntryWorkload(
                WorkloadConfig(n_items=2, orders_per_item=2, seed=7)
            )
            return workload.db, dict(workload.take(6))

        self._run_checked("wound-wait", factory, seed=7)

"""Tests for the committed benchmark baseline and the regression gate."""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.bench.baseline import (
    BASELINE_WORKLOADS,
    DEFAULT_TOLERANCES,
    RECORDED_METRICS,
    SCHEMA,
    SCHEMA_VERSION,
    Tolerance,
    collect_baseline,
    compare,
    load_baseline,
    metrics_record,
    run_baseline_workload,
    write_baseline,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMMITTED = os.path.join(REPO_ROOT, "BENCH_baseline.json")


@pytest.fixture(scope="module")
def fresh_doc():
    return collect_baseline()


class TestTolerance:
    def test_higher_is_better_floor(self):
        t = Tolerance("higher_is_better", rel=0.25)
        assert t.check(1.0, 1.0) == (True, 0.75)
        assert t.check(1.0, 0.75) == (True, 0.75)
        assert t.check(1.0, 0.74)[0] is False
        assert t.check(1.0, 2.0)[0] is True  # improvement always passes

    def test_lower_is_better_ceiling(self):
        t = Tolerance("lower_is_better", rel=0.25)
        assert t.check(4.0, 5.0) == (True, 5.0)
        assert t.check(4.0, 5.01)[0] is False
        assert t.check(4.0, 1.0)[0] is True

    def test_absolute_slack(self):
        t = Tolerance("higher_is_better", abs_=0.02)
        assert t.check(0.9, 0.88)[0] is True
        assert t.check(0.9, 0.87)[0] is False


class TestBaselineDocument:
    def test_schema_fields(self, fresh_doc):
        assert fresh_doc["schema"] == SCHEMA
        assert fresh_doc["schema_version"] == SCHEMA_VERSION
        assert set(fresh_doc["workloads"]) == set(BASELINE_WORKLOADS)
        for name, entry in fresh_doc["workloads"].items():
            assert entry["config"] == BASELINE_WORKLOADS[name]
            assert set(entry["metrics"]) == set(RECORDED_METRICS)

    def test_metrics_record_shape(self):
        metrics = run_baseline_workload("p1_mpl4")
        record = metrics_record(metrics)
        assert set(record) == set(RECORDED_METRICS)
        assert all(isinstance(v, float) for v in record.values())
        assert record["committed"] > 0
        assert record["throughput"] > 0

    def test_runs_are_reproducible(self, fresh_doc):
        assert collect_baseline() == fresh_doc

    def test_write_and_load_round_trip(self, tmp_path, fresh_doc):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, fresh_doc)
        assert load_baseline(path) == fresh_doc
        # stable serialisation (sorted keys, trailing newline)
        with open(path) as fh:
            text = fh.read()
        assert text.endswith("\n")
        assert json.loads(text) == fresh_doc


class TestCompare:
    def test_identical_documents_pass(self, fresh_doc):
        result = compare(fresh_doc, fresh_doc)
        assert result.ok
        assert not result.errors
        gated = [row for row in result.rows if row.gated]
        # every tolerance-gated metric is checked for every workload
        assert len(gated) == len(DEFAULT_TOLERANCES) * len(BASELINE_WORKLOADS)
        assert "PASS" in result.summary()

    def test_throughput_regression_fails(self, fresh_doc):
        hurt = copy.deepcopy(fresh_doc)
        entry = hurt["workloads"]["p1_mpl4"]["metrics"]
        entry["throughput"] = entry["throughput"] * 0.5  # -50% > 25% budget
        result = compare(fresh_doc, hurt)
        assert not result.ok
        assert [(r.workload, r.metric) for r in result.regressions] == [
            ("p1_mpl4", "throughput")
        ]
        assert "FAIL" in result.summary()

    def test_small_drift_within_tolerance_passes(self, fresh_doc):
        drifted = copy.deepcopy(fresh_doc)
        entry = drifted["workloads"]["p1_mpl4"]["metrics"]
        entry["throughput"] = entry["throughput"] * 0.9
        entry["p95_response"] = entry["p95_response"] * 1.1
        assert compare(fresh_doc, drifted).ok

    def test_hit_rate_floor_trips(self, fresh_doc):
        hurt = copy.deepcopy(fresh_doc)
        entry = hurt["workloads"]["p2_hot"]["metrics"]
        entry["commute_cache_hit_rate"] = entry["commute_cache_hit_rate"] - 0.05
        result = compare(fresh_doc, hurt)
        assert not result.ok
        assert [(r.workload, r.metric) for r in result.regressions] == [
            ("p2_hot", "commute_cache_hit_rate")
        ]

    def test_improvements_pass(self, fresh_doc):
        better = copy.deepcopy(fresh_doc)
        for entry in better["workloads"].values():
            entry["metrics"]["throughput"] *= 2
            entry["metrics"]["p95_response"] *= 0.5
            entry["metrics"]["commute_cache_hit_rate"] = 1.0
        assert compare(fresh_doc, better).ok

    def test_schema_version_mismatch_errors(self, fresh_doc):
        old = copy.deepcopy(fresh_doc)
        old["schema_version"] = SCHEMA_VERSION + 1
        result = compare(old, fresh_doc)
        assert not result.ok
        assert any("schema_version" in e for e in result.errors)
        result = compare(fresh_doc, {"schema": "something-else"})
        assert not result.ok

    def test_missing_workload_errors(self, fresh_doc):
        partial = copy.deepcopy(fresh_doc)
        del partial["workloads"]["p2_cold"]
        result = compare(fresh_doc, partial)
        assert not result.ok
        assert any("p2_cold" in e for e in result.errors)
        # extra fresh workloads are fine (baseline widens later)
        assert compare(partial, fresh_doc).ok

    def test_config_drift_errors(self, fresh_doc):
        drifted = copy.deepcopy(fresh_doc)
        drifted["workloads"]["p1_mpl4"]["config"]["mpl"] = 5
        result = compare(fresh_doc, drifted)
        assert not result.ok
        assert any("config drifted" in e for e in result.errors)

    def test_missing_metric_errors(self, fresh_doc):
        partial = copy.deepcopy(fresh_doc)
        del partial["workloads"]["p1_mpl4"]["metrics"]["throughput"]
        result = compare(fresh_doc, partial)
        assert not result.ok
        assert any("throughput" in e for e in result.errors)

    def test_ungated_metrics_are_informational(self, fresh_doc):
        noisy = copy.deepcopy(fresh_doc)
        # 'committed' carries no tolerance: huge drift is info, not FAIL
        noisy["workloads"]["p1_mpl4"]["metrics"]["committed"] = 1.0
        result = compare(fresh_doc, noisy)
        assert result.ok
        info = [r for r in result.rows if not r.gated]
        assert any(r.metric == "committed" for r in info)
        assert all(r.status == "info" for r in info)


class TestCommittedBaseline:
    """The in-repo gate the CI bench-regression job replays."""

    def test_committed_file_matches_fresh_run(self, fresh_doc):
        committed = load_baseline(COMMITTED)
        result = compare(committed, fresh_doc)
        assert result.ok, result.summary()

    def test_committed_file_is_current_schema(self):
        committed = load_baseline(COMMITTED)
        assert committed["schema"] == SCHEMA
        assert committed["schema_version"] == SCHEMA_VERSION
        assert set(committed["workloads"]) == set(BASELINE_WORKLOADS)

    def test_committed_baseline_exercises_the_caches(self):
        committed = load_baseline(COMMITTED)
        for name, entry in committed["workloads"].items():
            assert entry["metrics"]["commute_cache_hit_rate"] > 0.5, name
            assert entry["metrics"]["relief_cache_hits"] > 0, name

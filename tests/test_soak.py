"""Soak tests: larger workloads through every protocol, no wreckage.

These runs are too large for the reduction checker (hundreds of leaves);
they assert operational invariants instead: every transaction reaches a
terminal state, no locks / queue entries / wait edges leak, restarts and
deadlocks stay bounded, and the kernel never stalls.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_closed_loop
from repro.core.protocol import SemanticLockingProtocol, SemanticNoReliefProtocol
from repro.orderentry.workload import OrderEntryWorkload, WorkloadConfig
from repro.protocols.closed_nested import ClosedNestedProtocol
from repro.protocols.open_nested_naive import OpenNestedNaiveProtocol
from repro.protocols.two_phase_object import ObjectRW2PLProtocol
from repro.protocols.two_phase_page import PageLockingProtocol

from tests.helpers import run_programs

ALL = [
    SemanticLockingProtocol,
    SemanticNoReliefProtocol,
    OpenNestedNaiveProtocol,
    ClosedNestedProtocol,
    ObjectRW2PLProtocol,
    PageLockingProtocol,
]


@pytest.mark.parametrize("protocol_cls", ALL, ids=lambda c: c.name)
def test_soak_concurrent_batch(protocol_cls):
    """60 mixed transactions, 12-way concurrent, full mix incl. T0."""
    config = WorkloadConfig(
        n_items=4,
        orders_per_item=3,
        mix={"T0": 0.5, "T1": 1.0, "T2": 1.0, "T3": 0.7, "T4": 0.7, "T5": 0.5},
        seed=99,
    )
    workload = OrderEntryWorkload(config)
    programs = dict(workload.take(60))
    kernel = run_programs(
        workload.db, programs, protocol=protocol_cls(), policy="random", seed=99
    )
    terminal = sum(1 for h in kernel.handles.values() if h.committed or h.aborted)
    assert terminal == 60
    assert kernel.locks.lock_count == 0
    assert kernel.locks.pending_count == 0
    assert kernel.waits.edge_count == 0
    # Without client-side retries the thrashy protocols abort a lot under
    # this contention; the floor only guards against mass failure.
    floors = {"page-2pl": 20, "semantic-no-relief": 25, "closed-nested": 25}
    assert kernel.metrics.commits >= floors.get(protocol_cls.name, 40)


@pytest.mark.parametrize("policy", ["detect", "wait-die", "wound-wait"])
def test_soak_deadlock_policies(policy):
    from repro.core.kernel import TransactionManager
    from repro.runtime.scheduler import Scheduler

    config = WorkloadConfig(n_items=2, orders_per_item=2, seed=7)
    workload = OrderEntryWorkload(config)
    kernel = TransactionManager(
        workload.db,
        scheduler=Scheduler(policy="random", seed=7),
        deadlock_policy=policy,
    )
    for name, program in workload.take(40):
        kernel.spawn(name, program)
    kernel.run()
    terminal = sum(1 for h in kernel.handles.values() if h.committed or h.aborted)
    assert terminal == 40
    assert kernel.locks.lock_count == 0


def test_soak_closed_loop_throughput_positive():
    """The closed-loop bench harness at scale: everything drains."""
    metrics = run_closed_loop(
        SemanticLockingProtocol,
        WorkloadConfig(n_items=3, orders_per_item=3, seed=41),
        n_transactions=80,
        mpl=10,
    )
    assert metrics.committed >= 70
    assert metrics.throughput > 0

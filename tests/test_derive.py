"""Unit tests for the commutativity deriver (behavioural model checking)."""

from __future__ import annotations

from repro.orderentry.models import ItemModel, OrderModel
from repro.orderentry.schema import ITEM_TYPE, ORDER_TYPE
from repro.semantics.derive import (
    StateModel,
    derive_matrix,
    invocations_commute,
    matrices_agree,
)
from repro.semantics.invocation import Invocation


class CounterModel(StateModel):
    """Toy model: an escrow-style counter with Incr / Decr / Value."""

    type_name = "Counter"

    def operations(self):
        return ["Incr", "Value"]

    def sample_states(self):
        return [0, 5]

    def sample_invocations(self, operation):
        if operation == "Incr":
            return [Invocation("Incr", (1,)), Invocation("Incr", (2,))]
        return [Invocation("Value", ())]

    def apply(self, state, invocation):
        if invocation.operation == "Incr":
            return state + invocation.arg(0), None
        return state, state

    def observers(self):
        return [Invocation("Value", ())]


class TestInvocationsCommute:
    def test_increments_commute(self):
        model = CounterModel()
        assert invocations_commute(model, 0, Invocation("Incr", (1,)), Invocation("Incr", (2,)))

    def test_increment_vs_read_conflicts(self):
        model = CounterModel()
        assert not invocations_commute(model, 0, Invocation("Incr", (1,)), Invocation("Value", ()))

    def test_reads_commute(self):
        model = CounterModel()
        assert invocations_commute(model, 5, Invocation("Value", ()), Invocation("Value", ()))


class TestDeriveMatrix:
    def test_counter_classification(self):
        derived = derive_matrix(CounterModel())
        assert derived.cell("Incr", "Incr").classification == "ok"
        assert derived.cell("Incr", "Value").classification == "conflict"
        assert derived.cell("Value", "Value").classification == "ok"
        assert "Incr" in derived.format_table()

    def test_order_model_matches_fig3(self):
        """The declared Fig. 3 matrix agrees exactly with the model."""
        derived = derive_matrix(OrderModel())
        assert derived.cell("ChangeStatus", "ChangeStatus").classification == "ok"
        assert derived.cell("TestStatus", "TestStatus").classification == "ok"
        # parameter-dependent: same event conflicts, different commutes
        assert derived.cell("ChangeStatus", "TestStatus").classification == "param"
        assert derived.cell("RemoveStatus", "ChangeStatus").classification == "param"

    def test_item_model_headline_cells(self):
        derived = derive_matrix(ItemModel())
        assert derived.cell("NewOrder", "NewOrder").classification == "ok"
        assert derived.cell("ShipOrder", "PayOrder").classification == "ok"
        assert derived.cell("TotalPayment", "TotalPayment").classification == "ok"
        assert derived.cell("PayOrder", "TotalPayment").classification == "param"
        # shipping never changes paid totals
        assert derived.cell("ShipOrder", "TotalPayment").classification == "ok"


class TestMatricesAgree:
    def test_fig3_declared_matrix_is_sound_and_tight(self):
        comparison = matrices_agree(ORDER_TYPE.matrix, OrderModel())
        assert comparison.is_sound, comparison.unsound
        # the Fig. 3 matrix is exact for ChangeStatus/TestStatus — no
        # conservative slack on the public operations
        public = [
            (f, g)
            for f, g in comparison.conservative
            if f.operation != "RemoveStatus" and g.operation != "RemoveStatus"
        ]
        assert public == []

    def test_fig2_declared_matrix_is_sound(self):
        comparison = matrices_agree(
            ITEM_TYPE.matrix,
            ItemModel(),
            operations=["NewOrder", "ShipOrder", "PayOrder", "TotalPayment"],
        )
        assert comparison.is_sound, comparison.unsound

    def test_unsound_matrix_detected(self):
        """A matrix claiming Incr/Value compatible must be flagged."""
        from repro.semantics.compatibility import CompatibilityMatrix

        bad = CompatibilityMatrix("Counter", ["Incr", "Value"])
        bad.allow("Incr", "Incr")
        bad.allow("Incr", "Value")  # wrong!
        bad.allow("Value", "Value")
        comparison = matrices_agree(bad, CounterModel())
        assert not comparison.is_sound
        assert any(f.operation == "Incr" for f, __ in comparison.unsound)

"""Differential tests: conflict-test decision caches vs. the cold path.

The commutativity memo and the ancestor-relief cache
(:class:`~repro.semantics.memo.CommutativityMemo`,
:class:`~repro.core.reliefcache.AncestorReliefCache`) are pure
performance changes — the PR's contract is that a kernel running with
``SemanticLockingProtocol(caching=True)`` is bit-identical to one
running with ``caching=False``: same traces, same grant order, same
outcomes, same history, same final state.  Random order-entry workloads
under random interleavings are driven through both configurations and
every observable compared.

The non-semantic baselines carry no caches, but the PR also threads new
lifecycle hooks (``on_node_event`` / ``on_locks_reassigned``) through
the kernel for every protocol — a deterministic double-run per baseline
protocol pins that those hook sites stay inert side-effect-free no-ops
there.

A fixed 25-seed sweep (no hypothesis shrinking, exact seeds) backs the
ISSUE acceptance line "bit-identical across all protocols and >=20
seeds" with a deterministic witness.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.kernel import TransactionManager
from repro.core.protocol import SemanticLockingProtocol, SemanticNoReliefProtocol
from repro.orderentry.schema import build_order_entry_database
from repro.protocols.closed_nested import ClosedNestedProtocol
from repro.protocols.open_nested_naive import OpenNestedNaiveProtocol
from repro.protocols.two_phase_object import ObjectRW2PLProtocol
from repro.protocols.two_phase_page import PageLockingProtocol
from repro.runtime.scheduler import Scheduler

from tests.helpers import examples
from tests.test_lock_differential import observables
from tests.test_properties import (
    N_ITEMS,
    ORDERS_PER_ITEM,
    make_program,
    seeds,
    workload,
)

SEMANTIC_FACTORIES = {
    "semantic": SemanticLockingProtocol,
    "semantic-no-relief": SemanticNoReliefProtocol,
}

BASELINE_FACTORIES = {
    "closed": ClosedNestedProtocol,
    "open-naive": OpenNestedNaiveProtocol,
    "2pl-object": ObjectRW2PLProtocol,
    "2pl-page": PageLockingProtocol,
}

#: A workload exercising every conflict case: overlapping T1/T2 pairs on
#: shared items plus one disjoint transaction.
FIXED_SPECS = [
    ("T1", 0, 0, 1, 1),
    ("T2", 0, 0, 1, 0),
    ("T1", 1, 1, 0, 1),
    ("T2", 1, 0, 0, 0),
]

SWEEP_SEEDS = range(25)


def _run(specs, seed, protocol):
    built = build_order_entry_database(
        n_items=N_ITEMS, orders_per_item=ORDERS_PER_ITEM
    )
    kernel = TransactionManager(
        built.db,
        protocol=protocol,
        scheduler=Scheduler(policy="random", seed=seed),
    )
    for i, spec in enumerate(specs):
        kernel.spawn(f"X{i}-{spec[0]}", make_program(spec, built))
    kernel.run()
    return built, kernel


def assert_cached_matches_uncached(specs, seed, factory):
    built_c, kernel_c = _run(specs, seed, factory(caching=True))
    built_u, kernel_u = _run(specs, seed, factory(caching=False))
    obs_c = observables(built_c, kernel_c)
    obs_u = observables(built_u, kernel_u)
    for key in obs_c:
        assert obs_c[key] == obs_u[key], f"{key} diverged (seed {seed})"
    return kernel_c


def assert_deterministic(specs, seed, factory):
    built_a, kernel_a = _run(specs, seed, factory())
    built_b, kernel_b = _run(specs, seed, factory())
    obs_a = observables(built_a, kernel_a)
    obs_b = observables(built_b, kernel_b)
    for key in obs_a:
        assert obs_a[key] == obs_b[key], f"{key} diverged (seed {seed})"


class TestCachedMatchesUncached:
    """caching=True vs caching=False: every observable identical."""

    @settings(max_examples=examples(40), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_semantic(self, specs, seed):
        assert_cached_matches_uncached(specs, seed, SemanticLockingProtocol)

    @settings(max_examples=examples(20), deadline=None)
    @given(specs=workload, seed=seeds)
    def test_semantic_no_relief(self, specs, seed):
        assert_cached_matches_uncached(specs, seed, SemanticNoReliefProtocol)

    @pytest.mark.parametrize("name", sorted(SEMANTIC_FACTORIES))
    def test_fixed_seed_sweep(self, name):
        """The deterministic >=20-seed acceptance witness."""
        factory = SEMANTIC_FACTORIES[name]
        for seed in SWEEP_SEEDS:
            assert_cached_matches_uncached(FIXED_SPECS, seed, factory)

    def test_caches_actually_engaged(self):
        """The sweep is not vacuous: the cached runs hit both caches."""
        hits = 0
        relief_probes = 0
        for seed in SWEEP_SEEDS:
            kernel = assert_cached_matches_uncached(
                FIXED_SPECS, seed, SemanticLockingProtocol
            )
            snapshot = kernel.obs.snapshot()
            hits += snapshot.counter("cache.commute_hits")
            relief_probes += snapshot.counter(
                "cache.relief_hits"
            ) + snapshot.counter("cache.relief_misses")
        assert hits > 0
        assert relief_probes > 0


class TestBaselinesUnperturbed:
    """The new kernel lifecycle hooks are no-ops for cacheless protocols:
    a deterministic double-run of each baseline stays bit-identical."""

    @pytest.mark.parametrize("name", sorted(BASELINE_FACTORIES))
    def test_fixed_seed_sweep(self, name):
        factory = BASELINE_FACTORIES[name]
        for seed in SWEEP_SEEDS:
            assert_deterministic(FIXED_SPECS, seed, factory)

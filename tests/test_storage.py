"""Unit tests for the storage substrate: records, pages, manager."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateRecordError, UnknownObjectError
from repro.objects.oid import Oid
from repro.storage.manager import StorageManager
from repro.storage.page import Page
from repro.storage.record import RecordId


def oid(n: int) -> Oid:
    return Oid("Atom", n)


class TestPage:
    def test_allocate_and_release(self):
        page = Page(0, capacity=2)
        s0 = page.allocate(oid(1))
        s1 = page.allocate(oid(2))
        assert {s0, s1} == {0, 1}
        assert page.occupied == 2
        with pytest.raises(IndexError, match="full"):
            page.allocate(oid(3))
        page.release(s0)
        assert page.free_slots == 1
        assert page.owner_of(s1) == oid(2)

    def test_double_release_rejected(self):
        page = Page(0, capacity=1)
        slot = page.allocate(oid(1))
        page.release(slot)
        with pytest.raises(IndexError, match="already free"):
            page.release(slot)

    def test_owners(self):
        page = Page(0, capacity=3)
        page.allocate(oid(1))
        page.allocate(oid(2))
        assert set(page.owners()) == {oid(1), oid(2)}


class TestStorageManager:
    def test_sequential_clustering(self):
        mgr = StorageManager(records_per_page=2)
        rids = [mgr.allocate(oid(i)) for i in range(4)]
        assert [r.page_no for r in rids] == [0, 0, 1, 1]
        assert mgr.page_count == 2
        assert mgr.co_located(oid(0), oid(1))
        assert not mgr.co_located(oid(1), oid(2))

    def test_hole_reuse(self):
        mgr = StorageManager(records_per_page=2)
        for i in range(4):
            mgr.allocate(oid(i))
        mgr.release(oid(0))
        rid = mgr.allocate(oid(9))
        assert rid.page_no == 0  # hole reused before growing the file
        assert mgr.page_count == 2

    def test_page_oid(self):
        mgr = StorageManager(records_per_page=4)
        mgr.allocate(oid(1))
        page_oid = mgr.page_oid(oid(1))
        assert page_oid.type_name == "Page"
        assert page_oid.number == 0

    def test_duplicate_allocation_rejected(self):
        mgr = StorageManager()
        mgr.allocate(oid(1))
        with pytest.raises(DuplicateRecordError, match="already has a record"):
            mgr.allocate(oid(1))

    def test_duplicate_allocation_error_is_distinct(self):
        """The misfiled case gets its own type, still caught by old handlers.

        Allocating twice is "this object already exists", the opposite of
        "this object is unknown" — callers distinguishing the two (e.g. an
        idempotent loader retrying allocations) need separate types, while
        pre-existing ``except UnknownObjectError`` code keeps working.
        """
        mgr = StorageManager()
        mgr.allocate(oid(1))
        try:
            mgr.allocate(oid(1))
        except UnknownObjectError as exc:  # backwards-compatible catch
            assert isinstance(exc, DuplicateRecordError)
        else:
            pytest.fail("duplicate allocation must raise")
        # and the release path still reports unknown objects as unknown
        with pytest.raises(UnknownObjectError) as info:
            mgr.release(oid(99))
        assert not isinstance(info.value, DuplicateRecordError)

    def test_unknown_queries(self):
        mgr = StorageManager()
        with pytest.raises(UnknownObjectError):
            mgr.record_of(oid(1))
        with pytest.raises(UnknownObjectError):
            mgr.release(oid(1))

    def test_record_count(self):
        mgr = StorageManager(records_per_page=8)
        for i in range(5):
            mgr.allocate(oid(i))
        assert mgr.record_count == 5
        mgr.release(oid(3))
        assert mgr.record_count == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StorageManager(records_per_page=0)

    def test_record_id_str(self):
        assert str(RecordId(2, 3)) == "R(2,3)"

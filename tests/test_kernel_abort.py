"""Integration tests: aborts, compensation, physical undo, restarts."""

from __future__ import annotations

import pytest

from repro.errors import TransactionAborted
from repro.objects.database import Database
from repro.objects.encapsulated import TypeSpec
from repro.orderentry.schema import PAID, SHIPPED, build_order_entry_database

from tests.helpers import run_programs


class TestPhysicalUndo:
    def test_put_undone(self, db):
        atom = db.new_atom("x", 1)
        db.attach_child(atom)

        async def program(tx):
            await tx.put(atom, 99)
            tx.abort("nope")

        kernel = run_programs(db, {"T": program})
        assert kernel.handles["T"].aborted
        assert atom.raw_get() == 1

    def test_insert_undone(self, db):
        s = db.new_set("s")
        db.attach_child(s)
        member = db.new_atom("m", 1)

        async def program(tx):
            await tx.insert(s, 1, member)
            tx.abort("nope")

        run_programs(db, {"T": program})
        assert s.raw_size() == 0

    def test_remove_undone(self, db):
        s = db.new_set("s")
        db.attach_child(s)
        member = db.new_atom("m", 1)
        s.raw_insert(1, member)

        async def program(tx):
            await tx.remove(s, 1)
            tx.abort("nope")

        run_programs(db, {"T": program})
        assert s.raw_select(1) is member

    def test_multiple_puts_undone_in_reverse(self, db):
        a = db.new_atom("a", "a0")
        b = db.new_atom("b", "b0")
        db.attach_child(a)
        db.attach_child(b)

        async def program(tx):
            await tx.put(a, "a1")
            await tx.put(b, "b1")
            await tx.put(a, "a2")
            tx.abort("nope")

        run_programs(db, {"T": program})
        assert a.raw_get() == "a0"
        assert b.raw_get() == "b0"

    def test_created_objects_destroyed(self, db):
        created_oids = []

        async def program(tx):
            atom = tx.create_atom("tmp", 7)
            created_oids.append(atom.oid)
            tx.abort("nope")

        run_programs(db, {"T": program})
        assert not db.is_live(created_oids[0])

    def test_locks_released_after_abort(self, db):
        atom = db.new_atom("x", 1)
        db.attach_child(atom)

        async def program(tx):
            await tx.put(atom, 2)
            tx.abort("nope")

        kernel = run_programs(db, {"T": program})
        assert kernel.locks.lock_count == 0


class TestLogicalCompensation:
    def test_new_order_compensated_by_cancel(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        item = built.item(0)

        async def program(tx):
            await tx.call(item, "NewOrder", 42, 5)
            tx.abort("nope")

        kernel = run_programs(built.db, {"T": program})
        orders = item.impl_component("Orders")
        assert orders.raw_size() == 1  # only the pre-existing order
        assert kernel.metrics.compensations == 1

    def test_ship_order_compensated_by_unship(self):
        built = build_order_entry_database(
            n_items=1, orders_per_item=1, quantity_on_hand=100, order_quantity=4
        )
        item = built.item(0)

        async def program(tx):
            await tx.call(item, "ShipOrder", 1)
            tx.abort("nope")

        run_programs(built.db, {"T": program})
        assert item.impl_component("QOH").raw_get() == 100  # restored
        assert SHIPPED not in built.status_atom(0, 0).raw_get()

    def test_pay_order_compensated_by_unpay(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        item = built.item(0)

        async def program(tx):
            await tx.call(item, "PayOrder", 1)
            tx.abort("nope")

        run_programs(built.db, {"T": program})
        assert PAID not in built.status_atom(0, 0).raw_get()

    def test_compensations_run_in_reverse_order(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1, quantity_on_hand=10)
        item = built.item(0)

        async def program(tx):
            await tx.call(item, "ShipOrder", 1)
            await tx.call(item, "PayOrder", 1)
            tx.abort("nope")

        kernel = run_programs(built.db, {"T": program})
        comp_events = kernel.trace.of_kind("compensate")
        assert len(comp_events) == 2
        assert "UnpayOrder" in comp_events[0].detail["with_"]
        assert "UnshipOrder" in comp_events[1].detail["with_"]

    def test_readonly_methods_need_no_compensation(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        item = built.item(0)

        async def program(tx):
            await tx.call(item, "TotalPayment")
            tx.abort("nope")

        kernel = run_programs(built.db, {"T": program})
        assert kernel.metrics.compensations == 0
        assert kernel.handles["T"].aborted

    def test_effects_of_other_transactions_survive_compensation(self):
        """The point of logical compensation: a commuting update by a
        concurrent committed transaction is preserved when the first
        transaction rolls back (physical state restore would erase it)."""
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        item = built.item(0)
        order = built.order(0, 0)

        async def pay_then_abort(tx):
            await tx.call(item, "PayOrder", 1)
            # give the other transaction a chance to interleave
            for __ in range(12):
                await tx.pause()
            tx.abort("nope")

        async def ship(tx):
            # ChangeStatus(shipped) commutes with ChangeStatus(paid)
            await tx.call(order, "ChangeStatus", SHIPPED)

        run_programs(built.db, {"P": pay_then_abort, "S": ship})
        events = built.status_atom(0, 0).raw_get()
        assert SHIPPED in events  # S's commuting update survived
        assert PAID not in events  # P's update was compensated


class TestApplicationErrors:
    def test_application_exception_aborts_and_is_recorded(self, db):
        atom = db.new_atom("x", 1)
        db.attach_child(atom)

        async def program(tx):
            await tx.put(atom, 2)
            raise ValueError("user bug")

        kernel = run_programs(db, {"T": program})
        handle = kernel.handles["T"]
        assert handle.aborted
        assert isinstance(handle.error, ValueError)
        assert atom.raw_get() == 1

    def test_abort_reason_preserved(self, db):
        async def program(tx):
            tx.abort("business rule 7")

        kernel = run_programs(db, {"T": program})
        error = kernel.handles["T"].error
        assert isinstance(error, TransactionAborted)
        assert "business rule 7" in str(error)


class TestSubtransactionRestart:
    @pytest.fixture
    def counter(self):
        spec = TypeSpec("RCounter")

        @spec.method
        async def Add(ctx, counter, amount):
            atom = counter.impl_component("value")
            await ctx.put(atom, await ctx.get(atom) + amount)
            return None

        spec.matrix.allow("Add", "Add")
        db = Database()
        obj = db.new_encapsulated(spec, "c")
        db.attach_child(obj)
        impl = db.new_tuple("impl")
        impl.add_component("value", db.new_atom("value", 0))
        obj.set_implementation(impl)
        return db, obj

    def test_rmw_deadlock_resolved_by_restart_not_abort(self, counter):
        db, obj = counter

        def adder(amount):
            async def p(tx):
                await tx.call(obj, "Add", amount)
            return p

        kernel = run_programs(db, {"A": adder(2), "B": adder(3)})
        assert obj.impl_component("value").raw_get() == 5  # no lost update
        assert kernel.handles["A"].committed and kernel.handles["B"].committed
        assert kernel.metrics.subtxn_restarts >= 1
        assert kernel.metrics.aborts == 0

    def test_many_concurrent_adders_all_commit(self, counter):
        db, obj = counter

        def adder(amount):
            async def p(tx):
                await tx.call(obj, "Add", amount)
            return p

        programs = {f"T{i}": adder(i) for i in range(1, 6)}
        kernel = run_programs(db, programs, policy="random", seed=11)
        assert obj.impl_component("value").raw_get() == sum(range(1, 6))
        assert kernel.metrics.commits == 5

    def test_restarted_subtree_absent_from_history(self, counter):
        db, obj = counter

        def adder(amount):
            async def p(tx):
                await tx.call(obj, "Add", amount)
            return p

        kernel = run_programs(db, {"A": adder(2), "B": adder(3)})
        history = kernel.history()
        # every Add in the history has exactly one Get and one Put child
        for record in history.records:
            if record.operation == "Add":
                children = history.children_of(record.node_id)
                assert [c.operation for c in children] == ["Get", "Put"]

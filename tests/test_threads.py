"""Tests for the threaded runtime: protocol invariants under real threads.

Threaded runs are nondeterministic by design, so these tests assert
outcome invariants (final state, serializability, clean lock table)
rather than specific interleavings.
"""

from __future__ import annotations


from repro.core.kernel import TransactionManager
from repro.core.serializability import is_semantically_serializable
from repro.objects.database import Database
from repro.objects.encapsulated import TypeSpec
from repro.orderentry.schema import PAID, SHIPPED, build_order_entry_database
from repro.orderentry.transactions import make_t1, make_t2
from repro.runtime.threads import ThreadedRuntime


def threaded_kernel(db):
    runtime = ThreadedRuntime()
    kernel = TransactionManager(db, scheduler=runtime.scheduler)
    return runtime, kernel


class TestThreadedBasics:
    def test_single_transaction(self):
        db = Database()
        atom = db.new_atom("x", 1)
        db.attach_child(atom)
        runtime, kernel = threaded_kernel(db)

        async def program(tx):
            await tx.put(atom, 2)
            return await tx.get(atom)

        kernel.spawn("T", program)
        runtime.run()
        assert kernel.handles["T"].committed
        assert kernel.handles["T"].result == 2

    def test_ship_and_pay_under_threads(self):
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        runtime, kernel = threaded_kernel(built.db)
        kernel.spawn("T1", make_t1(built.item(0), 1, built.item(1), 2))
        kernel.spawn("T2", make_t2(built.item(0), 1, built.item(1), 2))
        runtime.run()
        assert kernel.handles["T1"].committed
        assert kernel.handles["T2"].committed
        assert built.status_atom(0, 0).raw_get().events == frozenset({SHIPPED, PAID})
        assert kernel.locks.lock_count == 0
        result = is_semantically_serializable(kernel.history(), db=built.db)
        assert result.serializable

    def test_commuting_counter_adds_no_lost_updates(self):
        spec = TypeSpec("TCounter")

        @spec.method
        async def Add(ctx, counter, amount):
            atom = counter.impl_component("value")
            await ctx.put(atom, await ctx.get(atom) + amount)
            return None

        spec.matrix.allow("Add", "Add")
        db = Database()
        counter = db.new_encapsulated(spec, "c")
        db.attach_child(counter)
        impl = db.new_tuple("impl")
        impl.add_component("value", db.new_atom("value", 0))
        counter.set_implementation(impl)

        runtime, kernel = threaded_kernel(db)
        for i in range(1, 5):
            amount = i

            def make(amount=amount):
                async def program(tx):
                    await tx.call(counter, "Add", amount)
                return program

            kernel.spawn(f"T{i}", make())
        runtime.run()
        committed = sum(1 for h in kernel.handles.values() if h.committed)
        assert committed == 4
        assert counter.impl_component("value").raw_get() == 10

    def test_deadlock_resolved_under_threads(self):
        db = Database()
        x = db.new_atom("x", 0)
        y = db.new_atom("y", 0)
        db.attach_child(x)
        db.attach_child(y)
        runtime, kernel = threaded_kernel(db)

        async def ab(tx):
            await tx.put(x, "A")
            for __ in range(3):
                await tx.pause()
            await tx.put(y, "A")

        async def ba(tx):
            await tx.put(y, "B")
            for __ in range(3):
                await tx.pause()
            await tx.put(x, "B")

        kernel.spawn("A", ab)
        kernel.spawn("B", ba)
        runtime.run()
        outcomes = {n: (h.committed, h.aborted) for n, h in kernel.handles.items()}
        # every transaction finished one way or the other, at least one
        # committed, and the lock table is clean
        assert all(c or a for c, a in outcomes.values())
        assert any(c for c, __ in outcomes.values())
        assert kernel.locks.lock_count == 0

"""Helper functions shared across test modules."""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.core.kernel import TransactionManager, TransactionProgram
from repro.objects.database import Database
from repro.orderentry.schema import OrderEntryDatabase
from repro.protocols.base import CCProtocol
from repro.runtime.scheduler import Scheduler
from repro.txn.locks import Lock, LockTable
from repro.txn.transaction import TransactionNode


def examples(n: int) -> int:
    """Hypothesis example budget, scaled for scheduled deep runs.

    Explicit ``@settings(max_examples=...)`` on a test overrides any
    hypothesis profile, so the nightly workflow raises the budget of the
    heavy property suites through this multiplier instead
    (``REPRO_HYPOTHESIS_MULTIPLIER=10`` turns 40 examples into 400).
    """
    return n * max(1, int(os.environ.get("REPRO_HYPOTHESIS_MULTIPLIER", "1")))


class ReferenceLockTable(LockTable):
    """The pre-index lock-table semantics, kept as a differential oracle.

    Release paths find locks by scanning every object's granted list
    with the original ownership predicates, and ``reevaluate`` re-tests
    every queue on every pass (no dirty-mark skipping) — i.e. the
    O(table size) behaviour the owner/blocker indices replaced.  The
    differential tests drive identical workloads through this class and
    the indexed one and require identical grant order, traces, and
    final state.  ``check_invariants`` still runs against the inherited
    index bookkeeping, so the oracle also cross-checks the indices.
    """

    def _queue_needs_retest(self, target, queue, dirty, retest) -> bool:
        return True

    def _scan(self, keep) -> list[Lock]:
        return [
            lock
            for locks in self._granted.values()
            for lock in locks
            if keep(lock)
        ]

    def locks_held_by_tree(self, root: TransactionNode) -> list[Lock]:
        return self._scan(lambda lock: lock.node.root() is root)

    def release_tree(self, root: TransactionNode) -> list[Lock]:
        self._count_release_op()
        released = self._scan(lambda lock: lock.node.root() is root)
        self._drop_locks(released)
        return released

    def _collect_subtree_locks(
        self, node: TransactionNode, include_self: bool
    ) -> list[Lock]:
        # Feeds release_descendant_locks / release_subtree /
        # reassign_locks_to_parent, which share the index bookkeeping.
        def keep(lock: Lock) -> bool:
            if lock.node is node:
                return include_self
            return node.is_ancestor_of(lock.node)

        return self._scan(keep)


def run_programs(
    database: Database,
    programs: dict[str, TransactionProgram],
    protocol: Optional[CCProtocol] = None,
    policy: str = "fifo",
    seed: Optional[int] = None,
    script: Optional[list[str]] = None,
    probe: Any = None,
    lock_table_cls: Optional[type[LockTable]] = None,
) -> TransactionManager:
    """Spawn and run programs on a fresh kernel; return the kernel."""
    scheduler = Scheduler(policy=policy, seed=seed, script=script)
    kernel = TransactionManager(
        database, protocol=protocol, scheduler=scheduler, lock_table_cls=lock_table_cls
    )
    if probe is not None:
        kernel.probe = probe
    for name, program in programs.items():
        kernel.spawn(name, program)
    kernel.run()
    return kernel


def status_atom_oid(built: OrderEntryDatabase, item_index: int, order_index: int):
    return built.status_atom(item_index, order_index).oid


def blocks_of(kernel: TransactionManager, txn: str) -> list:
    return [e for e in kernel.trace.of_kind("block") if e.txn == txn]

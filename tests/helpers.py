"""Helper functions shared across test modules."""

from __future__ import annotations

from typing import Any, Optional

from repro.core.kernel import TransactionManager, TransactionProgram
from repro.objects.database import Database
from repro.orderentry.schema import OrderEntryDatabase
from repro.protocols.base import CCProtocol
from repro.runtime.scheduler import Scheduler


def run_programs(
    database: Database,
    programs: dict[str, TransactionProgram],
    protocol: Optional[CCProtocol] = None,
    policy: str = "fifo",
    seed: Optional[int] = None,
    script: Optional[list[str]] = None,
    probe: Any = None,
) -> TransactionManager:
    """Spawn and run programs on a fresh kernel; return the kernel."""
    scheduler = Scheduler(policy=policy, seed=seed, script=script)
    kernel = TransactionManager(database, protocol=protocol, scheduler=scheduler)
    if probe is not None:
        kernel.probe = probe
    for name, program in programs.items():
        kernel.spawn(name, program)
    kernel.run()
    return kernel


def status_atom_oid(built: OrderEntryDatabase, item_index: int, order_index: int):
    return built.status_atom(item_index, order_index).oid


def blocks_of(kernel: TransactionManager, txn: str) -> list:
    return [e for e in kernel.trace.of_kind("block") if e.txn == txn]

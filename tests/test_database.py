"""Unit tests for the Database root: factories, registry, matrices."""

from __future__ import annotations

import pytest

from repro.errors import UnknownObjectError
from repro.objects.database import Database
from repro.objects.encapsulated import TypeSpec
from repro.semantics.generic import ATOM_MATRIX, DATABASE_MATRIX, SET_MATRIX


@pytest.fixture
def spec() -> TypeSpec:
    spec = TypeSpec("Thing")

    @spec.method
    async def Poke(ctx, obj):
        return None

    spec.matrix.conflict("Poke", "Poke")
    return spec


class TestFactories:
    def test_atom_gets_storage_record(self, db: Database):
        atom = db.new_atom("x", 5)
        assert db.storage.has_record(atom.oid)
        assert db.resolve(atom.oid) is atom
        assert atom.raw_get() == 5

    def test_set_gets_directory_record(self, db: Database):
        s = db.new_set("s")
        assert db.storage.has_record(s.oid)

    def test_tuple_and_encapsulated_registered(self, db: Database, spec: TypeSpec):
        t = db.new_tuple("t")
        e = db.new_encapsulated(spec, "e")
        assert db.resolve(t.oid) is t
        assert db.resolve(e.oid) is e
        assert e.oid.type_name == "Thing"

    def test_oids_unique_across_types(self, db: Database):
        objects = [db.new_atom("a"), db.new_set("s"), db.new_tuple("t")]
        numbers = [o.oid.number for o in objects]
        assert len(set(numbers)) == 3

    def test_deterministic_construction(self, spec: TypeSpec):
        def build():
            d = Database()
            return [d.new_atom("a").oid, d.new_set("s").oid, d.new_encapsulated(spec, "e").oid]

        assert build() == build()


class TestDestroy:
    def test_destroy_releases_records_and_registry(self, db: Database):
        atom = db.new_atom("x", 1)
        oid = atom.oid
        db.destroy(atom)
        assert not db.storage.has_record(oid)
        with pytest.raises(UnknownObjectError):
            db.resolve(oid)

    def test_destroy_subtree(self, db: Database):
        t = db.new_tuple("t")
        a = db.new_atom("a", 1)
        t.add_component("a", a)
        db.destroy(t)
        assert not db.is_live(a.oid)
        assert not db.is_live(t.oid)


class TestMatrixLookup:
    def test_generic_matrices(self, db: Database):
        assert db.matrix_for(db.new_atom("a")) is ATOM_MATRIX
        assert db.matrix_for(db.new_set("s")) is SET_MATRIX
        assert db.matrix_for(db) is DATABASE_MATRIX
        assert db.matrix_for(db.new_tuple("t")) is None

    def test_encapsulated_matrix(self, db: Database, spec: TypeSpec):
        obj = db.new_encapsulated(spec, "e")
        assert db.matrix_for(obj) is spec.matrix
        assert db.matrix_for_oid(obj.oid) is spec.matrix


class TestCompositionParentMap:
    def test_parent_map(self, db: Database):
        t = db.new_tuple("t")
        db.attach_child(t)
        a = db.new_atom("a")
        t.add_component("a", a)
        parents = db.composition_parent_map()
        assert parents[a.oid] == t.oid
        assert parents[t.oid] == db.oid
        assert parents[db.oid] is None

"""Cluster integration: router pass-through and cross-shard 2PC.

One module-scoped two-shard :class:`LocalCluster` (real shard child
processes over durable partitions) serves every test; with
``n_items=8`` the ring places items {3,4,5,6} on shard 0 and
{0,1,2,7} on shard 1, so ``(0, 3)`` is the canonical cross-shard pair.
"""

from __future__ import annotations

import pytest

from repro.cluster import LocalCluster
from repro.cluster.router import ClusterRouter, CoordinatorLog, ShardLink
from repro.server.requests import Request

CROSS = (0, 3)  # item 0 -> shard 1, item 3 -> shard 0


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    base = tmp_path_factory.mktemp("cluster-twopc")
    with LocalCluster(
        2, str(base), shard_config={"n_items": 8, "orders_per_item": 2}
    ) as running:
        yield running


class TestRouting:
    def test_items_span_both_shards(self, cluster):
        owners = {cluster.router.shard_of_item(i) for i in range(8)}
        assert owners == {0, 1}
        a, b = CROSS
        assert cluster.router.shard_of_item(a) != cluster.router.shard_of_item(b)

    def test_single_shard_request_passes_through(self, cluster):
        router = cluster.router
        before = router.stats()
        placed = router.route_request(
            Request(op="place", item=CROSS[0], request_id="t-single")
        )
        assert placed.ok, placed.to_dict()
        stock = router.route_request(Request(op="stock-check", item=CROSS[0]))
        assert stock.ok and stock.result == 1000
        after = router.stats()
        assert after["single_shard"] == before["single_shard"] + 2
        assert after["cross_shard"] == before["cross_shard"]


class TestTwoPhaseCommit:
    def test_cross_shard_place_commits_on_both_shards(self, cluster):
        router = cluster.router
        before = router.stats()
        placed = router.route_request(
            Request(op="place", request_id="t-cross", lines=((CROSS[0], 2), (CROSS[1], 1)))
        )
        assert placed.ok, placed.to_dict()
        assert isinstance(placed.result, list) and len(placed.result) == 2
        # Each branch's order is real on its own shard: paying it works.
        for item, order_no in zip(CROSS, placed.result):
            paid = router.route_request(
                Request(op="pay", item=item, order_no=order_no)
            )
            assert paid.ok, paid.to_dict()
        after = router.stats()
        assert after["cross_shard"] == before["cross_shard"] + 1
        assert after["2pc_committed"] == before["2pc_committed"] + 1
        assert after["2pc_aborted"] == before["2pc_aborted"]

    def test_cross_shard_total_payment_sums_both_branches(self, cluster):
        router = cluster.router
        singles = [
            router.route_request(Request(op="total-payment", item=item)).result
            for item in CROSS
        ]
        combined = router.route_request(
            Request(op="total-payment", request_id="t-total", items=CROSS)
        )
        assert combined.ok, combined.to_dict()
        assert combined.result == sum(singles)

    def test_failed_branch_aborts_globally_and_compensates(self, cluster):
        router = cluster.router
        probe = router.route_request(Request(op="place", item=CROSS[0]))
        before = router.stats()
        # Index 8 is out of range but hashes to shard 0, so the request
        # still plans as cross-shard: shard 1's branch commits locally,
        # shard 0's branch votes no, and the router must compensate.
        placed = router.route_request(
            Request(op="place", request_id="t-abort", lines=((CROSS[0], 1), (8, 1)))
        )
        assert placed.status == "failed", placed.to_dict()
        assert placed.error["code"] == "unknown-object"
        after = router.stats()
        assert after["2pc_aborted"] == before["2pc_aborted"] + 1
        # The abort decision is durable at the coordinator ...
        aborted = [
            gtid for gtid, decision in cluster.log.decisions().items()
            if gtid.endswith("-t-abort")
        ]
        assert aborted and cluster.log.status(aborted[0]) == "abort"
        # ... and the shard stays fully available afterwards.  The order
        # counter may show a one-number hole: CancelOrder compensates by
        # removing the order without rolling the counter back — exactly
        # the state-based residue semantic atomicity permits.
        recheck = router.route_request(Request(op="place", item=CROSS[0]))
        assert recheck.ok, recheck.to_dict()
        assert recheck.result in (probe.result + 1, probe.result + 2)

    def test_unmeetable_deadline_sheds_through_the_router(self, cluster):
        router = cluster.router
        shed = router.route_request(
            Request(
                op="place",
                request_id="t-shed",
                deadline=1e-9,
                lines=((CROSS[0], 1), (CROSS[1], 1)),
            )
        )
        assert shed.status == "shed", shed.to_dict()
        assert shed.error["reason_code"] == "cluster-branch-shed"
        assert shed.retry_after is not None and shed.retry_after > 0


class TestShardLink:
    def test_pool_exhaustion_raises_connection_error(self):
        # capacity=0 forces the blocking-get path immediately; it must
        # surface as ConnectionError (the shard-down/retry path), not a
        # bare queue.Empty.
        link = ShardLink("127.0.0.1", 1, capacity=0, timeout=0.05)
        with pytest.raises(ConnectionError, match="pool exhausted"):
            link._borrow()


class TestGtidUniqueness:
    def test_router_rebuilds_over_one_log_never_reuse_gtids(self, tmp_path):
        # The coordinator log persists across router rebuilds (shard
        # restarts, reruns on the same --data-dir); a reused gtid would
        # make decide() a silent no-op serving a stale decision.
        log = CoordinatorLog(str(tmp_path / "coordinator.json"))
        anonymous = Request(op="place", item=0)
        gtids: set[str] = set()
        for _ in range(2):
            router = ClusterRouter([("127.0.0.1", 1)], log)
            for _ in range(5):
                gtid = router._next_gtid(anonymous)
                assert gtid not in gtids
                gtids.add(gtid)
        # The epoch stays dash-free so the request id is still exactly
        # what follows the first dash (the torture oracle parses this).
        named = router._next_gtid(Request(op="place", item=0, request_id="t-a-b"))
        assert named.split("-", 1)[1] == "t-a-b"
        log.close()


class TestWireProtocol:
    def test_router_wire_server_routes_and_reports_stats(self, cluster):
        import json
        import socket

        host, port = cluster.wire.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            fh = sock.makefile("rw")
            fh.write(json.dumps({"op": "stock-check", "item": CROSS[1]}) + "\n")
            fh.flush()
            reply = json.loads(fh.readline())
            assert reply["status"] == "ok"
            fh.write(json.dumps({"op": "stats"}) + "\n")
            fh.flush()
            stats = json.loads(fh.readline())
            assert stats["status"] == "ok"
            assert stats["result"]["shards"] == 2
            assert stats["result"]["requests"] >= 1

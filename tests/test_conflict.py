"""Unit tests for the Fig. 9 conflict test on hand-built transaction trees."""

from __future__ import annotations

import pytest

from repro.core.conflict import actions_commute
from repro.core.conflict import test_conflict as fig9_conflict
from repro.objects.database import Database
from repro.objects.encapsulated import TypeSpec
from repro.semantics.invocation import Invocation
from repro.txn.transaction import NodeStatus, TransactionNode


@pytest.fixture
def world():
    """A database with one encapsulated 'Box' owning an atom."""
    spec = TypeSpec("Box")

    @spec.method
    async def Add(ctx, obj, key):
        return None

    @spec.method(readonly=True)
    async def Read(ctx, obj, key):
        return None

    m = spec.matrix
    m.allow("Add", "Add")
    m.allow_if_distinct_arg("Add", "Read")
    m.allow("Read", "Read")
    spec.validate()

    db = Database()
    box = db.new_encapsulated(spec, "box")
    db.attach_child(box)
    impl = db.new_tuple("box-impl")
    box.set_implementation(impl)
    atom = db.new_atom("state")
    impl.add_component("state", atom)
    return db, box, atom


def txn_root(db: Database, name: str) -> TransactionNode:
    return TransactionNode(name, None, db.oid, Invocation("Transaction", (name,)))


def child(parent: TransactionNode, target, op: str, *args) -> TransactionNode:
    return TransactionNode(
        f"{parent.node_id}/{op}", parent, target.oid, Invocation(op, args)
    )


class TestActionsCommute:
    def test_same_object_uses_matrix(self, world):
        db, box, __ = world
        assert actions_commute(db, box.oid, Invocation("Add", (1,)), box.oid, Invocation("Add", (2,)))
        assert not actions_commute(db, box.oid, Invocation("Add", (1,)), box.oid, Invocation("Read", (1,)))

    def test_different_objects_never_commute_here(self, world):
        db, box, atom = world
        assert not actions_commute(
            db, box.oid, Invocation("Add", (1,)), atom.oid, Invocation("Get", ())
        )

    def test_parameter_dependence(self, world):
        db, box, __ = world
        assert actions_commute(db, box.oid, Invocation("Add", (1,)), box.oid, Invocation("Read", (2,)))


class TestFig9:
    def test_direct_commute_returns_none(self, world):
        db, box, __ = world
        t1, t2 = txn_root(db, "T1"), txn_root(db, "T2")
        h = child(t1, box, "Add", 1)
        r = child(t2, box, "Add", 2)
        assert fig9_conflict(db, h, h.invocation, h.target, r, r.invocation, r.target) is None

    def test_same_top_level_returns_none(self, world):
        db, box, atom = world
        t1 = txn_root(db, "T1")
        h = child(t1, atom, "Put", 1)
        r = child(t1, atom, "Get")
        assert fig9_conflict(db, h, h.invocation, h.target, r, r.invocation, r.target) is None

    def test_case1_committed_commutative_ancestor(self, world):
        """Fig. 6: leaf conflict relieved by a committed commuting ancestor."""
        db, box, atom = world
        t1, t2 = txn_root(db, "T1"), txn_root(db, "T2")
        add = child(t1, box, "Add", 1)
        put = child(add, atom, "Put", "v")
        read = child(t2, box, "Read", 2)  # commutes with Add(1)
        get = child(read, atom, "Get")
        add.status = NodeStatus.COMMITTED
        result = fig9_conflict(db, put, put.invocation, put.target, get, get.invocation, get.target)
        assert result is None

    def test_case2_active_commutative_ancestor(self, world):
        """Fig. 7: wait for the commuting ancestor's subtransaction commit."""
        db, box, atom = world
        t1, t2 = txn_root(db, "T1"), txn_root(db, "T2")
        add = child(t1, box, "Add", 1)
        put = child(add, atom, "Put", "v")
        read = child(t2, box, "Read", 2)
        get = child(read, atom, "Get")
        # add still ACTIVE
        result = fig9_conflict(db, put, put.invocation, put.target, get, get.invocation, get.target)
        assert result is add

    def test_worst_case_waits_for_holder_root(self, world):
        """No commuting pair below the roots: wait for top-level commit."""
        db, box, atom = world
        t1, t2 = txn_root(db, "T1"), txn_root(db, "T2")
        add = child(t1, box, "Add", 1)
        put = child(add, atom, "Put", "v")
        read = child(t2, box, "Read", 1)  # Read(1) conflicts with Add(1)
        get = child(read, atom, "Get")
        add.status = NodeStatus.COMMITTED
        result = fig9_conflict(db, put, put.invocation, put.target, get, get.invocation, get.target)
        # the commuting pair is the two roots (Transaction/Transaction on
        # the database object); t1 is active, so it is the blocker
        assert result is t1

    def test_relief_disabled_always_waits_for_root(self, world):
        db, box, atom = world
        t1, t2 = txn_root(db, "T1"), txn_root(db, "T2")
        add = child(t1, box, "Add", 1)
        put = child(add, atom, "Put", "v")
        read = child(t2, box, "Read", 2)
        get = child(read, atom, "Get")
        add.status = NodeStatus.COMMITTED
        result = fig9_conflict(
            db, put, put.invocation, put.target,
            get, get.invocation, get.target,
            ancestor_relief=False,
        )
        assert result is t1

    def test_bottom_up_order_prefers_deepest_ancestor(self, world):
        """The first commuting pair found bottom-up is the wait target."""
        db, box, atom = world
        # nested boxes: outer Add -> inner Add -> Put
        t1, t2 = txn_root(db, "T1"), txn_root(db, "T2")
        outer_h = child(t1, box, "Add", 1)
        inner_h = child(outer_h, box, "Add", 10)
        put = child(inner_h, atom, "Put", "v")
        outer_r = child(t2, box, "Add", 2)
        inner_r = child(outer_r, box, "Add", 20)
        get = child(inner_r, atom, "Get")
        result = fig9_conflict(db, put, put.invocation, put.target, get, get.invocation, get.target)
        # inner_h (Add(10)) commutes with inner_r (Add(20)) and is the
        # deepest holder ancestor — it is returned, not outer_h.
        assert result is inner_h

"""Property-based tests (hypothesis) for the protocol stack.

The central soundness property of the paper's protocol: **every history
it admits is semantically serializable**.  We generate random order-entry
workloads and random interleavings, run them through the kernel, and ask
the BBG89 reduction checker.  A serial-replay oracle strengthens this:
replaying the checker's serial order on a fresh database must reproduce
the concurrent run's final state.
"""

from __future__ import annotations

from hypothesis import example, given, settings, strategies as st

from repro.core.protocol import SemanticLockingProtocol, SemanticNoReliefProtocol
from repro.core.serializability import is_semantically_serializable
from repro.objects.atoms import AtomicObject
from repro.objects.database import Database
from repro.objects.sets import SetObject
from repro.orderentry.schema import build_order_entry_database
from repro.orderentry.transactions import (
    make_new_order_txn,
    make_t1,
    make_t2,
    make_t3,
    make_t4,
    make_t5,
)
from repro.protocols.closed_nested import ClosedNestedProtocol
from repro.protocols.open_nested_naive import OpenNestedNaiveProtocol
from repro.protocols.two_phase_object import ObjectRW2PLProtocol
from repro.protocols.two_phase_page import PageLockingProtocol

from tests.helpers import run_programs

N_ITEMS = 2
ORDERS_PER_ITEM = 2


def snapshot(db: Database) -> dict:
    """Final database state keyed by object path (OIDs vary per run)."""
    state = {}
    for obj in db.subtree():
        if isinstance(obj, AtomicObject):
            state[obj.path] = obj.raw_get()
        elif isinstance(obj, SetObject):
            state[obj.path + "/keys"] = tuple(sorted(k for k, __ in obj.raw_scan()))
    return state


# Atoms whose values are system-generated surrogates: behavioural
# equivalence holds *up to renaming* of these (the paper's Enqueue
# argument for NewOrder/NewOrder — which order draws which number is
# not semantically meaningful).
_SURROGATE_ATOMS = frozenset({"OrderNo", "NextOrderNo"})


def canonical(obj) -> tuple:
    """Order-insensitive, surrogate-free description of an object tree.

    Set members are compared as a multiset of their canonical forms with
    their keys dropped, so two executions that assign order numbers in a
    different order — but are otherwise behaviourally identical — get
    equal canonical states.
    """
    from repro.objects.encapsulated import EncapsulatedObject
    from repro.objects.tuples import TupleObject

    def freeze_value(value):
        if isinstance(value, frozenset):
            return ("frozenset", tuple(sorted(map(repr, value))))
        return value

    if isinstance(obj, AtomicObject):
        return ("atom", freeze_value(obj.raw_get()))
    if isinstance(obj, TupleObject):
        return (
            "tuple",
            tuple(
                sorted(
                    (label, canonical(obj.component(label)))
                    for label in obj.component_labels
                    if label not in _SURROGATE_ATOMS
                )
            ),
        )
    if isinstance(obj, SetObject):
        return ("set", tuple(sorted(repr(canonical(m)) for __, m in obj.raw_scan())))
    if isinstance(obj, EncapsulatedObject):
        return ("enc", obj.spec.name, canonical(obj.impl))
    return (
        "obj",
        obj.name,
        tuple(
            canonical(child)
            for child in obj.children
            if not (isinstance(child, AtomicObject) and child.name in _SURROGATE_ATOMS)
        ),
    )


def canonical_state(db: Database) -> tuple:
    return tuple(canonical(child) for child in db.children)


def make_program(spec: tuple, built):
    """Materialise a transaction description against a database."""
    kind = spec[0]
    if kind == "T1":
        __, i1, o1, i2, o2 = spec
        return make_t1(built.item(i1), built.order_no(i1, o1), built.item(i2), built.order_no(i2, o2))
    if kind == "T2":
        __, i1, o1, i2, o2 = spec
        return make_t2(built.item(i1), built.order_no(i1, o1), built.item(i2), built.order_no(i2, o2))
    if kind == "T3":
        __, i1, o1, i2, o2 = spec
        return make_t3(built.order(i1, o1), built.order(i2, o2))
    if kind == "T4":
        __, i1, o1, i2, o2 = spec
        return make_t4(built.order(i1, o1), built.order(i2, o2))
    if kind == "T5":
        return make_t5(built.item(spec[1]))
    if kind == "T0":
        __, i1, customer, qty = spec
        return make_new_order_txn(built.item(i1), customer, qty)
    raise AssertionError(kind)


item_idx = st.integers(0, N_ITEMS - 1)
order_idx = st.integers(0, ORDERS_PER_ITEM - 1)

txn_spec = st.one_of(
    st.tuples(st.just("T1"), item_idx, order_idx, item_idx, order_idx),
    st.tuples(st.just("T2"), item_idx, order_idx, item_idx, order_idx),
    st.tuples(st.just("T3"), item_idx, order_idx, item_idx, order_idx),
    st.tuples(st.just("T4"), item_idx, order_idx, item_idx, order_idx),
    st.tuples(st.just("T5"), item_idx),
    st.tuples(st.just("T0"), item_idx, st.integers(100, 105), st.integers(1, 3)),
)

workload = st.lists(txn_spec, min_size=2, max_size=4)
seeds = st.integers(0, 10_000)


def run_workload(specs, seed, protocol):
    built = build_order_entry_database(n_items=N_ITEMS, orders_per_item=ORDERS_PER_ITEM)
    programs = {f"X{i}-{spec[0]}": make_program(spec, built) for i, spec in enumerate(specs)}
    kernel = run_programs(built.db, programs, protocol=protocol, policy="random", seed=seed)
    return built, kernel


class TestSemanticProtocolSoundness:
    # Regression: T1 shipping the same order twice around T4's two status
    # reads used to be misjudged non-serializable — the checker ordered
    # TestStatus (status atom only) against reads of the *amount* atom
    # until the leaf-footprint refinement in serializability.py.
    @example(specs=[("T1", 0, 0, 0, 0), ("T4", 0, 0, 0, 0)], seed=0)
    @settings(max_examples=60, deadline=None)
    @given(specs=workload, seed=seeds)
    def test_every_admitted_history_is_serializable(self, specs, seed):
        built, kernel = run_workload(specs, seed, SemanticLockingProtocol())
        result = is_semantically_serializable(kernel.history(), db=built.db, budget=400_000)
        assert result.serializable, kernel.history().format()

    @example(specs=[("T1", 0, 0, 0, 0), ("T4", 0, 0, 0, 0)], seed=0)
    @settings(max_examples=40, deadline=None)
    @given(specs=workload, seed=seeds)
    def test_serial_replay_oracle(self, specs, seed):
        """Replaying the checker's serial order reproduces the state."""
        built, kernel = run_workload(specs, seed, SemanticLockingProtocol())
        if kernel.metrics.aborts:
            return  # oracle only meaningful when everything committed
        result = is_semantically_serializable(kernel.history(), db=built.db, budget=400_000)
        assert result.serializable
        assert result.serial_order is not None

        # replay serially in the checker's order on a fresh database
        fresh = build_order_entry_database(n_items=N_ITEMS, orders_per_item=ORDERS_PER_ITEM)
        name_to_spec = {f"X{i}-{spec[0]}": spec for i, spec in enumerate(specs)}
        for txn_name in result.serial_order:
            program = make_program(name_to_spec[txn_name], fresh)
            serial_kernel = run_programs(fresh.db, {txn_name: program})
            assert serial_kernel.handles[txn_name].committed
        # Equality is modulo surrogate order-number renaming: NewOrder is
        # declared self-commutative although which invocation draws which
        # number depends on the interleaving (the paper's idealisation).
        assert canonical_state(built.db) == canonical_state(fresh.db)

    @settings(max_examples=40, deadline=None)
    @given(specs=workload, seed=seeds)
    def test_no_locks_leak(self, specs, seed):
        __, kernel = run_workload(specs, seed, SemanticLockingProtocol())
        assert kernel.locks.lock_count == 0
        assert kernel.locks.pending_count == 0
        assert kernel.waits.edge_count == 0

    @settings(max_examples=30, deadline=None)
    @given(specs=workload, seed=seeds)
    def test_determinism(self, specs, seed):
        def fingerprint():
            built, kernel = run_workload(specs, seed, SemanticLockingProtocol())
            return (
                [(r.txn, r.node_id, r.operation, r.begin_seq) for r in kernel.history().records],
                snapshot(built.db),
            )

        assert fingerprint() == fingerprint()


class TestBaselineSoundness:
    @settings(max_examples=25, deadline=None)
    @given(specs=workload, seed=seeds)
    def test_object_rw_2pl_serializable(self, specs, seed):
        built, kernel = run_workload(specs, seed, ObjectRW2PLProtocol())
        result = is_semantically_serializable(kernel.history(), db=built.db, budget=400_000)
        assert result.serializable

    @settings(max_examples=25, deadline=None)
    @given(specs=workload, seed=seeds)
    def test_page_locking_serializable(self, specs, seed):
        built, kernel = run_workload(specs, seed, PageLockingProtocol())
        result = is_semantically_serializable(kernel.history(), db=built.db, budget=400_000)
        assert result.serializable

    @settings(max_examples=25, deadline=None)
    @given(specs=workload, seed=seeds)
    def test_closed_nested_serializable(self, specs, seed):
        built, kernel = run_workload(specs, seed, ClosedNestedProtocol())
        result = is_semantically_serializable(kernel.history(), db=built.db, budget=400_000)
        assert result.serializable

    @settings(max_examples=25, deadline=None)
    @given(specs=workload, seed=seeds)
    def test_no_relief_ablation_serializable(self, specs, seed):
        """Disabling ancestor relief loses concurrency, never safety."""
        built, kernel = run_workload(specs, seed, SemanticNoReliefProtocol())
        result = is_semantically_serializable(kernel.history(), db=built.db, budget=400_000)
        assert result.serializable

    @settings(max_examples=25, deadline=None)
    @given(
        specs=st.lists(
            st.one_of(
                st.tuples(st.just("T1"), item_idx, order_idx, item_idx, order_idx),
                st.tuples(st.just("T2"), item_idx, order_idx, item_idx, order_idx),
            ),
            min_size=2,
            max_size=3,
        ),
        seed=seeds,
    )
    def test_naive_protocol_sound_without_bypassing(self, specs, seed):
        """T1/T2 respect encapsulation, so Section 3's protocol is
        correct on them (the paper's stated precondition)."""
        built, kernel = run_workload(specs, seed, OpenNestedNaiveProtocol())
        result = is_semantically_serializable(kernel.history(), db=built.db, budget=400_000)
        assert result.serializable


class TestCommutativitySymmetry:
    @settings(max_examples=100, deadline=None)
    @given(
        op_a=st.sampled_from(["ChangeStatus", "TestStatus", "RemoveStatus"]),
        op_b=st.sampled_from(["ChangeStatus", "TestStatus", "RemoveStatus"]),
        ev_a=st.sampled_from(["shipped", "paid"]),
        ev_b=st.sampled_from(["shipped", "paid"]),
        state=st.frozensets(st.sampled_from(["shipped", "paid"])),
    )
    def test_behavioural_commutativity_is_symmetric(self, op_a, op_b, ev_a, ev_b, state):
        from repro.orderentry.models import OrderModel
        from repro.semantics.derive import invocations_commute
        from repro.semantics.invocation import Invocation

        model = OrderModel()
        f = Invocation(op_a, (ev_a,))
        g = Invocation(op_b, (ev_b,))
        assert invocations_commute(model, state, f, g) == invocations_commute(
            model, state, g, f
        )

    @settings(max_examples=100, deadline=None)
    @given(
        op_a=st.sampled_from(["ChangeStatus", "TestStatus"]),
        op_b=st.sampled_from(["ChangeStatus", "TestStatus"]),
        ev_a=st.sampled_from(["shipped", "paid"]),
        ev_b=st.sampled_from(["shipped", "paid"]),
    )
    def test_declared_matrix_is_symmetric(self, op_a, op_b, ev_a, ev_b):
        from repro.orderentry.schema import ORDER_TYPE
        from repro.semantics.invocation import Invocation

        f = Invocation(op_a, (ev_a,))
        g = Invocation(op_b, (ev_b,))
        assert ORDER_TYPE.matrix.compatible(f, g) == ORDER_TYPE.matrix.compatible(g, f)

"""Tests for transaction-consistent checkpoints."""

from __future__ import annotations

import pytest

from repro.core.kernel import TransactionManager, run_transactions
from repro.orderentry.schema import ITEM_TYPE, ORDER_TYPE, build_order_entry_database
from repro.orderentry.transactions import make_t1, make_t2
from repro.recovery import WriteAheadLog
from repro.recovery.checkpoint import (
    CheckpointError,
    recover_from_checkpoint,
    restore_checkpoint,
    take_checkpoint,
)
from repro.runtime.scheduler import Scheduler

from tests.test_recovery import snapshot_state

TYPE_SPECS = {"Item": ITEM_TYPE, "Order": ORDER_TYPE}


def run_logged(built, programs, wal, max_steps=None):
    kernel = TransactionManager(built.db, scheduler=Scheduler(), wal=wal)
    for name, program in programs.items():
        kernel.spawn(name, program)
    finished = kernel.scheduler.run(max_steps=max_steps)
    if not finished:
        kernel.scheduler.shutdown()
    return kernel, finished


class TestCheckpointLifecycle:
    def test_restore_reproduces_state(self):
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        wal = WriteAheadLog()
        run_logged(built, {"T1": make_t1(built.item(0), 1, built.item(1), 2)}, wal)
        checkpoint = take_checkpoint(built.db, wal)
        restored = restore_checkpoint(checkpoint, TYPE_SPECS)
        assert snapshot_state(restored, exclude=()) == snapshot_state(
            built.db, exclude=()
        )

    def test_checkpoint_requires_quiescence(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        wal = WriteAheadLog()
        kernel, finished = run_logged(
            built, {"T2": make_t2(built.item(0), 1, built.item(0), 1)}, wal, max_steps=6
        )
        assert not finished
        with pytest.raises(CheckpointError, match="quiescence"):
            take_checkpoint(built.db, wal, kernel=kernel)

    def test_checkpoint_records_wal_position(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        wal = WriteAheadLog()
        run_logged(built, {"T2": make_t2(built.item(0), 1, built.item(0), 1)}, wal)
        checkpoint = take_checkpoint(built.db, wal)
        assert checkpoint.lsn == max(r.lsn for r in wal)


class TestRecoveryFromCheckpoint:
    def test_suffix_only_replay(self):
        """Run T1, checkpoint, run T2 + an in-flight N1, crash, recover
        from the checkpoint: T1 comes from the snapshot, T2 from redo,
        N1 is compensated."""
        built = build_order_entry_database(n_items=2, orders_per_item=2)
        wal = WriteAheadLog()
        run_logged(built, {"T1": make_t1(built.item(0), 1, built.item(1), 2)}, wal)
        checkpoint = take_checkpoint(built.db, wal)
        pre_checkpoint_records = len(wal)

        # phase 1: T2 runs to completion on the same kernel/log
        kernel = TransactionManager(built.db, scheduler=Scheduler(), wal=wal)
        kernel.spawn("T2", make_t2(built.item(0), 1, built.item(1), 2))
        kernel.run()
        assert wal.status_of("T2") == "commit"

        # phase 2: N1 starts, commits its NewOrder subtransaction, and
        # the process crashes while it lingers before top-level commit
        async def n1(tx):
            await tx.call(built.item(0), "NewOrder", 900, 2)
            for __ in range(50):
                await tx.pause()

        kernel.spawn("N1", n1)
        finished = kernel.scheduler.run(max_steps=30)
        kernel.scheduler.shutdown()
        assert not finished  # N1 in flight at the crash
        assert wal.status_of("N1") == "in-flight"

        recovered, report = recover_from_checkpoint(checkpoint, wal, TYPE_SPECS)
        # only the suffix was replayed
        assert report.redone < len(wal)
        assert report.redone == sum(
            1
            for r in wal
            if r.lsn > checkpoint.lsn and type(r).__name__ == "UpdateRecord"
        )
        # expected state: T1 and T2 applied, N1 gone
        oracle = build_order_entry_database(n_items=2, orders_per_item=2)
        run_transactions(oracle.db, {"T1": make_t1(oracle.item(0), 1, oracle.item(1), 2)})
        run_transactions(oracle.db, {"T2": make_t2(oracle.item(0), 1, oracle.item(1), 2)})
        assert snapshot_state(recovered) == snapshot_state(oracle.db)
        if wal.status_of("N1") == "in-flight":
            assert "N1" in report.losers

    def test_recover_from_checkpoint_with_clean_suffix(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        wal = WriteAheadLog()
        run_logged(built, {"T2": make_t2(built.item(0), 1, built.item(0), 1)}, wal)
        checkpoint = take_checkpoint(built.db, wal)
        recovered, report = recover_from_checkpoint(checkpoint, wal, TYPE_SPECS)
        assert report.redone == 0
        assert not report.losers
        assert snapshot_state(recovered) == snapshot_state(built.db)

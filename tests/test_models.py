"""Direct tests of the behavioural state models (Item / Order)."""

from __future__ import annotations

import pytest

from repro.orderentry.models import ItemModel, OrderModel
from repro.orderentry.schema import PAID, SHIPPED
from repro.semantics.invocation import Invocation


def inv(op, *args):
    return Invocation(op, args)


class TestOrderModel:
    model = OrderModel()

    def test_change_adds_event(self):
        state, result = self.model.apply(frozenset(), inv("ChangeStatus", SHIPPED))
        assert state == frozenset({SHIPPED})
        assert result is None

    def test_change_idempotent(self):
        state, __ = self.model.apply(frozenset({PAID}), inv("ChangeStatus", PAID))
        assert state == frozenset({PAID})

    def test_test_status(self):
        __, result = self.model.apply(frozenset({PAID}), inv("TestStatus", PAID))
        assert result is True
        __, result = self.model.apply(frozenset({PAID}), inv("TestStatus", SHIPPED))
        assert result is False

    def test_remove_status(self):
        state, __ = self.model.apply(frozenset({PAID, SHIPPED}), inv("RemoveStatus", PAID))
        assert state == frozenset({SHIPPED})

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            self.model.apply(frozenset(), inv("Explode"))

    def test_observers_are_readonly(self):
        for probe in self.model.observers():
            assert probe.operation == "TestStatus"


class TestItemModel:
    model = ItemModel()

    def base_state(self):
        return self.model.sample_states()[2]  # orders 1 (new) and 2 (paid)

    def test_new_order_returns_opaque_ok(self):
        state, result = self.model.apply(self.base_state(), inv("NewOrder", 7, 4, "a"))
        assert result == "ok"
        __, ___, orders = state
        assert any(key == ("a", 0) for key, *__ in orders)

    def test_two_new_orders_same_seed_get_distinct_keys(self):
        state, __ = self.model.apply(self.base_state(), inv("NewOrder", 7, 4, "a"))
        state, __ = self.model.apply(state, inv("NewOrder", 8, 2, "a"))
        keys = {key for key, *__ in state[2]}
        assert ("a", 0) in keys and ("a", 1) in keys

    def test_ship_decrements_qoh(self):
        state, result = self.model.apply(self.base_state(), inv("ShipOrder", 1))
        assert result == "shipped"
        assert state[1] == 50 - 3  # order 1 has quantity 3

    def test_ship_missing_order(self):
        state, result = self.model.apply(self.base_state(), inv("ShipOrder", 99))
        assert result == "no-such-order"
        assert state == self.base_state()

    def test_pay_then_total(self):
        state, __ = self.model.apply(self.base_state(), inv("PayOrder", 1))
        __, total = self.model.apply(state, inv("TotalPayment"))
        # order 1 (qty 3) newly paid + order 2 (qty 5) already paid
        assert total == (3 + 5) * ItemModel.PRICE

    def test_total_ignores_unpaid(self):
        __, total = self.model.apply(self.model.sample_states()[1], inv("TotalPayment"))
        assert total == 0

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            self.model.apply(self.base_state(), inv("Explode"))

    def test_sample_invocations_cover_surrogates(self):
        ships = self.model.sample_invocations("ShipOrder")
        assert any(isinstance(s.arg(0), tuple) for s in ships)

"""Tests for the publishing application (the second adopter domain)."""

from __future__ import annotations

import pytest

from repro.core.serializability import is_semantically_serializable
from repro.errors import WorkloadError
from repro.publishing.schema import (
    DOCUMENT_TYPE,
    SECTION_TYPE,
    build_publishing_database,
)
from repro.publishing.workload import PublishingConfig, PublishingWorkload
from repro.semantics.invocation import Invocation

from tests.helpers import run_programs


@pytest.fixture
def shelf():
    return build_publishing_database(n_documents=2, sections_per_document=2)


class TestTypeDefinitions:
    def test_matrices_complete(self):
        assert DOCUMENT_TYPE.matrix.is_complete()
        assert SECTION_TYPE.matrix.is_complete()

    def test_headline_cells(self):
        m = DOCUMENT_TYPE.matrix
        inv = Invocation
        assert m.compatible(inv("Annotate", (1, 10, "x")), inv("Annotate", (1, 11, "y")))
        assert m.compatible(inv("Annotate", (1, 10, "x")), inv("Publish", ()))
        assert m.compatible(inv("Annotate", (1, 10, "x")), inv("WordCount", ()))
        assert not m.compatible(inv("EditSection", (1, "t")), inv("WordCount", ()))
        assert not m.compatible(inv("EditSection", (1, "t")), inv("Publish", ()))
        # per-section parameter dependence
        assert m.compatible(inv("EditSection", (1, "t")), inv("EditSection", (2, "u")))
        assert not m.compatible(inv("EditSection", (1, "t")), inv("EditSection", (1, "u")))


class TestMethods:
    def test_edit_and_read(self, shelf):
        doc = shelf.document(0)

        async def program(tx):
            previous = await tx.call(doc, "EditSection", 1, "brand new text")
            return previous

        kernel = run_programs(shelf.db, {"T": program})
        assert kernel.handles["T"].result == "lorem ipsum dolor"
        assert shelf.body_atom(0, 0).raw_get() == "brand new text"

    def test_add_section_numbers(self, shelf):
        doc = shelf.document(0)

        async def program(tx):
            first = await tx.call(doc, "AddSection", "H", "one two")
            second = await tx.call(doc, "AddSection", "H2", "three")
            return (first, second)

        kernel = run_programs(shelf.db, {"T": program})
        assert kernel.handles["T"].result == (3, 4)

    def test_word_count_bypasses_sections(self, shelf):
        doc = shelf.document(0)

        async def program(tx):
            return await tx.call(doc, "WordCount")

        kernel = run_programs(shelf.db, {"T": program})
        assert kernel.handles["T"].result == 6  # 2 sections x 3 words
        history = kernel.history()
        # the reads hit Body atoms directly, not Section methods
        assert not any(r.operation == "ReadBody" for r in history.records)
        assert any(r.operation == "Get" for r in history.records)

    def test_publish_flag(self, shelf):
        doc = shelf.document(0)

        async def program(tx):
            await tx.call(doc, "Publish")
            return await tx.call(doc, "IsPublished")

        kernel = run_programs(shelf.db, {"T": program})
        assert kernel.handles["T"].result is True


class TestConcurrency:
    def test_annotators_do_not_block(self, shelf):
        doc = shelf.document(0)

        def annotator(note_id):
            async def program(tx):
                return await tx.call(doc, "Annotate", 1, note_id, f"note {note_id}")
            return program

        kernel = run_programs(
            shelf.db, {f"R{i}": annotator(i) for i in range(1, 5)}
        )
        assert kernel.metrics.commits == 4
        # only short leaf-level waits at worst — never on a top level
        for event in kernel.trace.of_kind("block"):
            assert all(not w.startswith("R") for w in event.detail["waits_for"]), event
        notes = shelf.section(0, 0).impl_component("Notes")
        assert notes.raw_size() == 4

    def test_authors_on_distinct_sections_interleave(self, shelf):
        doc = shelf.document(0)

        def author(section_no, text):
            async def program(tx):
                return await tx.call(doc, "EditSection", section_no, text)
            return program

        kernel = run_programs(
            shelf.db, {"A1": author(1, "alpha"), "A2": author(2, "beta")}
        )
        assert kernel.metrics.commits == 2
        assert kernel.metrics.blocks == 0  # parameter-aware cell
        assert shelf.body_atom(0, 0).raw_get() == "alpha"
        assert shelf.body_atom(0, 1).raw_get() == "beta"

    def test_authors_on_same_section_serialize(self, shelf):
        doc = shelf.document(0)

        def author(text, pauses):
            async def program(tx):
                result = await tx.call(doc, "EditSection", 1, text)
                for __ in range(pauses):
                    await tx.pause()
                return result
            return program

        kernel = run_programs(
            shelf.db, {"A1": author("alpha", 6), "A2": author("beta", 0)}
        )
        blocks = [e for e in kernel.trace.of_kind("block") if e.txn == "A2"]
        assert blocks and blocks[0].detail["waits_for"] == ["A1"]
        assert shelf.body_atom(0, 0).raw_get() == "beta"  # A2 after A1
        assert kernel.handles["A2"].result == "alpha"  # read A1's text

    def test_annotate_while_publishing(self, shelf):
        doc = shelf.document(0)

        async def publisher(tx):
            await tx.call(doc, "Publish")
            for __ in range(5):
                await tx.pause()

        async def annotator(tx):
            return await tx.call(doc, "Annotate", 1, 99, "post-publication note")

        kernel = run_programs(shelf.db, {"P": publisher, "R": annotator})
        assert kernel.metrics.commits == 2
        annotator_blocks = [e for e in kernel.trace.of_kind("block") if e.txn == "R"]
        assert annotator_blocks == []  # Annotate/Publish commute


class TestCompensation:
    def test_aborted_edit_restores_previous_text(self, shelf):
        doc = shelf.document(0)

        async def doomed(tx):
            await tx.call(doc, "EditSection", 1, "garbage")
            tx.abort("editor changed their mind")

        kernel = run_programs(shelf.db, {"D": doomed})
        assert kernel.handles["D"].aborted
        assert shelf.body_atom(0, 0).raw_get() == "lorem ipsum dolor"

    def test_aborted_draft_removes_section(self, shelf):
        doc = shelf.document(0)

        async def doomed(tx):
            await tx.call(doc, "AddSection", "H", "draft")
            tx.abort("nope")

        run_programs(shelf.db, {"D": doomed})
        sections = doc.impl_component("Sections")
        assert sections.raw_size() == 2

    def test_aborted_annotation_survives_concurrent_note(self, shelf):
        """Compensating one annotation must not disturb another's."""
        doc = shelf.document(0)

        async def doomed(tx):
            await tx.call(doc, "Annotate", 1, 50, "to be withdrawn")
            for __ in range(10):
                await tx.pause()
            tx.abort("withdrawn")

        async def keeper(tx):
            return await tx.call(doc, "Annotate", 1, 51, "stays")

        kernel = run_programs(shelf.db, {"D": doomed, "K": keeper})
        assert kernel.handles["K"].committed
        notes = shelf.section(0, 0).impl_component("Notes")
        assert notes.raw_contains(51)
        assert not notes.raw_contains(50)


class TestWorkload:
    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            PublishingConfig(n_documents=0)
        with pytest.raises(WorkloadError):
            PublishingConfig(mix={"SING": 1.0})

    def test_deterministic(self):
        def names(seed):
            workload = PublishingWorkload(PublishingConfig(seed=seed))
            return [name for name, __ in workload.take(15)]

        assert names(4) == names(4)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_batches_serializable(self, seed):
        workload = PublishingWorkload(PublishingConfig(seed=seed))
        programs = dict(workload.take(6))
        kernel = run_programs(workload.db, programs, policy="random", seed=seed)
        terminal = sum(1 for h in kernel.handles.values() if h.committed or h.aborted)
        assert terminal == 6
        result = is_semantically_serializable(kernel.history(), db=workload.db)
        assert result.serializable, seed

"""Unit tests for atoms, tuples, sets, and encapsulated objects."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, UnknownOperationError
from repro.objects.atoms import AtomicObject
from repro.objects.encapsulated import EncapsulatedObject, TypeSpec
from repro.objects.oid import Oid
from repro.objects.sets import SetObject
from repro.objects.tuples import TupleObject


class TestAtomicObject:
    def test_raw_get_put(self):
        atom = AtomicObject(Oid("Atom", 1), "x", 41)
        assert atom.raw_get() == 41
        atom.raw_put(42)
        assert atom.raw_get() == 42

    def test_default_value_none(self):
        assert AtomicObject(Oid("Atom", 1), "x").raw_get() is None


class TestTupleObject:
    def test_components(self):
        t = TupleObject(Oid("Tuple", 1), "t")
        a = AtomicObject(Oid("Atom", 2), "a", 1)
        t.add_component("a", a)
        assert t.component("a") is a
        assert t.has_component("a")
        assert not t.has_component("b")
        assert t.component_labels == ("a",)
        assert a.parent is t

    def test_duplicate_component_rejected(self):
        t = TupleObject(Oid("Tuple", 1), "t")
        t.add_component("a", AtomicObject(Oid("Atom", 2), "a"))
        with pytest.raises(SchemaError, match="already has a component"):
            t.add_component("a", AtomicObject(Oid("Atom", 3), "a2"))

    def test_unknown_component(self):
        t = TupleObject(Oid("Tuple", 1), "t")
        with pytest.raises(SchemaError, match="no component"):
            t.component("missing")


class TestSetObject:
    def make_set(self) -> SetObject:
        return SetObject(Oid("Set", 1), "s")

    def member(self, n: int) -> AtomicObject:
        return AtomicObject(Oid("Atom", 10 + n), f"m{n}", n)

    def test_insert_select(self):
        s = self.make_set()
        m = self.member(1)
        s.raw_insert(1, m)
        assert s.raw_select(1) is m
        assert s.raw_select(2) is None
        assert s.raw_contains(1)
        assert m.parent is s

    def test_duplicate_key_rejected(self):
        s = self.make_set()
        s.raw_insert(1, self.member(1))
        with pytest.raises(SchemaError, match="already contains"):
            s.raw_insert(1, self.member(2))

    def test_remove_returns_and_detaches(self):
        s = self.make_set()
        m = self.member(1)
        s.raw_insert(1, m)
        removed = s.raw_remove(1)
        assert removed is m
        assert m.parent is None
        assert s.raw_size() == 0

    def test_remove_missing(self):
        with pytest.raises(SchemaError, match="no member"):
            self.make_set().raw_remove(9)

    def test_scan_order_and_size(self):
        s = self.make_set()
        members = [self.member(i) for i in (3, 1, 2)]
        for m in members:
            s.raw_insert(m.raw_get(), m)
        assert [k for k, __ in s.raw_scan()] == [3, 1, 2]  # insertion order
        assert s.raw_size() == 3


class TestTypeSpec:
    def make_spec(self) -> TypeSpec:
        spec = TypeSpec("Counter")

        @spec.method(readonly=True)
        async def Value(ctx, obj):
            return 0

        @spec.method(inverse=lambda result, args: ("Decr", args))
        async def Incr(ctx, obj, amount):
            return None

        return spec

    def test_registration(self):
        spec = self.make_spec()
        assert set(spec.methods) == {"Value", "Incr"}
        assert spec.method_spec("Value").readonly
        assert spec.method_spec("Incr").inverse is not None
        assert spec.matrix.operations == ("Value", "Incr")

    def test_duplicate_method_rejected(self):
        spec = self.make_spec()
        with pytest.raises(SchemaError, match="already defines"):
            @spec.method(name="Incr")
            async def Incr2(ctx, obj):
                return None

    def test_unknown_method(self):
        with pytest.raises(UnknownOperationError):
            self.make_spec().method_spec("Nope")

    def test_validate_requires_complete_matrix(self):
        spec = self.make_spec()
        with pytest.raises(SchemaError, match="no compatibility entry"):
            spec.validate()
        m = spec.matrix
        m.allow("Value", "Value")
        m.conflict("Value", "Incr")
        m.allow("Incr", "Incr")
        spec.validate()  # now complete

    def test_validate_rejects_readonly_with_inverse(self):
        spec = TypeSpec("Bad")

        @spec.method(readonly=True, inverse=lambda r, a: ("X", ()))
        async def R(ctx, obj):
            return None

        spec.matrix.allow("R", "R")
        with pytest.raises(SchemaError, match="readonly but has an inverse"):
            spec.validate()

    def test_public_methods_exclude_internal(self):
        spec = TypeSpec("T")

        @spec.method
        async def Pub(ctx, obj):
            return None

        @spec.method(internal=True)
        async def Comp(ctx, obj):
            return None

        assert spec.public_methods == ("Pub",)


class TestEncapsulatedObject:
    def test_implementation_lifecycle(self):
        spec = TypeSpec("T")
        obj = EncapsulatedObject(Oid("T", 1), "x", spec)
        with pytest.raises(SchemaError, match="no implementation"):
            __ = obj.impl
        impl = TupleObject(Oid("Tuple", 2), "impl")
        impl.add_component("a", AtomicObject(Oid("Atom", 3), "a", 7))
        obj.set_implementation(impl)
        assert obj.impl is impl
        assert obj.impl_component("a").raw_get() == 7
        with pytest.raises(SchemaError, match="already has an implementation"):
            obj.set_implementation(TupleObject(Oid("Tuple", 4), "impl2"))

    def test_impl_component_requires_tuple(self):
        spec = TypeSpec("T")
        obj = EncapsulatedObject(Oid("T", 1), "x", spec)
        obj.set_implementation(AtomicObject(Oid("Atom", 2), "a"))
        with pytest.raises(SchemaError, match="not a tuple"):
            obj.impl_component("a")

"""Three-level ADT nesting: ADTs implemented in terms of other ADTs.

The paper's differentiator over earlier ADT concurrency control is that
"ADTs can be implemented in terms of other ADTs" at arbitrary depth.
This module builds a three-level stack —

    Ledger  (PostTransfer / NetTotal)
      +-- two Account ADTs (Credit / Debit / Balance)
            +-- Counter ADT (Add / Value)
                  +-- atom

— and checks the protocol through the resulting four-deep invocation
trees: commuting top-level methods interleave, conflicts are relieved
through the *deepest* applicable ancestor pair, and compensation
cascades through the levels.
"""

from __future__ import annotations

import pytest

from repro.core.serializability import is_semantically_serializable
from repro.objects.database import Database
from repro.objects.encapsulated import TypeSpec

from tests.helpers import run_programs

# ---------------------------------------------------------------------------
# Level 1: Counter on an atom
# ---------------------------------------------------------------------------
COUNTER = TypeSpec("NCounter")


@COUNTER.method(inverse=lambda result, args: ("Add", (-args[0],)))
async def Add(ctx, counter, amount):
    atom = counter.impl_component("value")
    await ctx.put(atom, await ctx.get(atom) + amount)
    return None


@COUNTER.method(readonly=True)
async def Value(ctx, counter):
    return await ctx.get(counter.impl_component("value"))


COUNTER.matrix.allow("Add", "Add")
COUNTER.matrix.conflict("Add", "Value")
COUNTER.matrix.allow("Value", "Value")
COUNTER.validate()

# ---------------------------------------------------------------------------
# Level 2: Account built on a Counter
# ---------------------------------------------------------------------------
ACCOUNT = TypeSpec("NAccount")


@ACCOUNT.method(inverse=lambda result, args: ("Debit", (args[0],)))
async def Credit(ctx, account, amount):
    await ctx.call(account.impl_component("counter"), "Add", amount)
    return None


@ACCOUNT.method(inverse=lambda result, args: ("Credit", (args[0],)))
async def Debit(ctx, account, amount):
    await ctx.call(account.impl_component("counter"), "Add", -amount)
    return None


@ACCOUNT.method(readonly=True)
async def Balance(ctx, account):
    return await ctx.call(account.impl_component("counter"), "Value")


ACCOUNT.matrix.allow("Credit", "Credit")
ACCOUNT.matrix.allow("Credit", "Debit")
ACCOUNT.matrix.allow("Debit", "Debit")
ACCOUNT.matrix.conflict("Credit", "Balance")
ACCOUNT.matrix.conflict("Debit", "Balance")
ACCOUNT.matrix.allow("Balance", "Balance")
ACCOUNT.validate()

# ---------------------------------------------------------------------------
# Level 3: Ledger built on two Accounts
# ---------------------------------------------------------------------------
LEDGER = TypeSpec("NLedger")


@LEDGER.method(inverse=lambda result, args: ("PostTransfer", (args[1], args[0], args[2])))
async def PostTransfer(ctx, ledger, source, destination, amount):
    accounts = {"a": ledger.impl_component("a"), "b": ledger.impl_component("b")}
    await ctx.call(accounts[source], "Debit", amount)
    await ctx.call(accounts[destination], "Credit", amount)
    return None


@LEDGER.method(readonly=True)
async def NetTotal(ctx, ledger):
    total_a = await ctx.call(ledger.impl_component("a"), "Balance")
    total_b = await ctx.call(ledger.impl_component("b"), "Balance")
    return total_a + total_b


LEDGER.matrix.allow("PostTransfer", "PostTransfer")  # transfers commute
LEDGER.matrix.conflict("PostTransfer", "NetTotal")
LEDGER.matrix.allow("NetTotal", "NetTotal")
LEDGER.validate()


@pytest.fixture
def ledger_world():
    db = Database()
    ledger = db.new_encapsulated(LEDGER, "ledger")
    db.attach_child(ledger)
    impl = db.new_tuple("ledger-impl")
    for label in ("a", "b"):
        account = db.new_encapsulated(ACCOUNT, f"acct-{label}")
        account_impl = db.new_tuple(f"acct-{label}-impl")
        counter = db.new_encapsulated(COUNTER, f"counter-{label}")
        counter_impl = db.new_tuple(f"counter-{label}-impl")
        counter_impl.add_component("value", db.new_atom("value", 100))
        counter.set_implementation(counter_impl)
        account_impl.add_component("counter", counter)
        account.set_implementation(account_impl)
        impl.add_component(label, account)
    ledger.set_implementation(impl)
    return db, ledger


def transfer(ledger, source, destination, amount):
    async def program(tx):
        await tx.call(ledger, "PostTransfer", source, destination, amount)

    return program


def balances(db, ledger):
    def value(label):
        account = ledger.impl_component(label)
        counter = account.impl_component("counter")
        return counter.impl_component("value").raw_get()

    return value("a"), value("b")


class TestDeepTrees:
    def test_invocation_tree_is_four_deep(self, ledger_world):
        db, ledger = ledger_world
        kernel = run_programs(db, {"T": transfer(ledger, "a", "b", 10)})
        history = kernel.history()
        assert max(r.depth for r in history.records) == 4  # txn->ledger->acct->counter->leaf
        ops = {r.operation for r in history.records}
        assert {"PostTransfer", "Debit", "Credit", "Add", "Get", "Put"} <= ops

    def test_commuting_transfers_interleave_and_balance(self, ledger_world):
        db, ledger = ledger_world
        programs = {
            "T1": transfer(ledger, "a", "b", 10),
            "T2": transfer(ledger, "b", "a", 25),
            "T3": transfer(ledger, "a", "b", 5),
        }
        kernel = run_programs(db, programs, policy="random", seed=3)
        assert kernel.metrics.commits == 3
        a, b = balances(db, ledger)
        assert a + b == 200
        assert (a, b) == (100 - 10 + 25 - 5, 100 + 10 - 25 + 5)
        assert is_semantically_serializable(kernel.history(), db=db)

    def test_relief_at_the_deepest_level(self, ledger_world):
        """Two transfers touching the same account conflict only at the
        leaf read-modify-write; the blocker must be a Counter-level Add
        (or deeper), never a top-level transaction."""
        db, ledger = ledger_world
        programs = {
            "T1": transfer(ledger, "a", "b", 10),
            "T2": transfer(ledger, "a", "b", 20),
        }
        kernel = run_programs(db, programs)
        for event in kernel.trace.of_kind("block"):
            assert all(w not in ("T1", "T2") for w in event.detail["waits_for"]), event

    def test_reader_waits_for_writer_commit(self, ledger_world):
        db, ledger = ledger_world
        order: list[str] = []

        async def writer(tx):
            await tx.call(ledger, "PostTransfer", "a", "b", 10)
            for __ in range(4):
                await tx.pause()
            order.append("writer-done")

        async def reader(tx):
            total = await tx.call(ledger, "NetTotal")
            order.append(f"read:{total}")
            return total

        kernel = run_programs(db, {"W": writer, "R": reader})
        assert kernel.handles["R"].result == 200
        assert order == ["writer-done", "read:200"]

    def test_abort_cascades_logical_compensation(self, ledger_world):
        db, ledger = ledger_world

        async def doomed(tx):
            await tx.call(ledger, "PostTransfer", "a", "b", 40)
            tx.abort("nope")

        kernel = run_programs(db, {"D": doomed})
        assert kernel.handles["D"].aborted
        assert balances(db, ledger) == (100, 100)
        # compensated at the highest level: one inverse PostTransfer
        comp = kernel.trace.of_kind("compensate")
        assert len(comp) == 1
        assert "PostTransfer" in comp[0].detail["with_"]

    def test_concurrent_aborts_and_commits_net_correctly(self, ledger_world):
        db, ledger = ledger_world

        async def doomed(tx):
            await tx.call(ledger, "PostTransfer", "a", "b", 40)
            for __ in range(10):
                await tx.pause()
            tx.abort("nope")

        programs = {
            "GOOD": transfer(ledger, "a", "b", 7),
            "BAD": doomed,
        }
        kernel = run_programs(db, programs, policy="random", seed=5)
        assert kernel.handles["GOOD"].committed
        assert kernel.handles["BAD"].aborted
        assert balances(db, ledger) == (93, 107)

"""The fault plane: plan validation, injector determinism, site faults.

Covers the `repro.faults` subsystem itself plus the kernel paths only a
fault plan can reach: injected aborts/restarts at named sites, the
root-scope restart that escapes every handler (the once-`pragma: no
cover` escalation in ``_run_top``), and the guarantee that a storm of
injected faults leaves the lock plane spotless.
"""

from __future__ import annotations

import pytest

from repro.core.kernel import TransactionManager, run_transactions
from repro.errors import CrashPoint
from repro.faults import FaultInjector, FaultPlan, FaultPlanError, FaultSpec
from repro.orderentry.transactions import make_t1, make_t2
from repro.orderentry.workload import OrderEntryWorkload, WorkloadConfig
from repro.runtime.scheduler import Scheduler


def t1_t2(order_entry):
    return {
        "T1": make_t1(order_entry.item(0), 1, order_entry.item(1), 2),
        "T2": make_t2(order_entry.item(0), 1, order_entry.item(1), 2),
    }


class TestPlanValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultSpec(site="post-commit", action="crash")

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault action"):
            FaultSpec(site="pre-acquire", action="explode")

    def test_action_must_be_legal_at_site(self):
        # restarting an already-committed node is meaningless
        with pytest.raises(FaultPlanError, match="cannot be injected"):
            FaultSpec(site="post-subcommit", action="restart")
        # compensations must run to completion
        with pytest.raises(FaultPlanError, match="cannot be injected"):
            FaultSpec(site="pre-compensate", action="abort")

    def test_step_faults_need_at_step(self):
        with pytest.raises(FaultPlanError, match="at_step"):
            FaultSpec(site="step", action="crash")
        with pytest.raises(FaultPlanError, match="at_step"):
            FaultSpec(site="pre-acquire", action="crash", at_step=3)

    def test_delay_needs_positive_delay(self):
        with pytest.raises(FaultPlanError, match="positive delay"):
            FaultSpec(site="pre-acquire", action="delay")
        with pytest.raises(FaultPlanError, match="positive delay"):
            FaultSpec(site="lock-wait", action="timeout", delay=0.0)

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="pre-acquire", action="abort", probability=1.5)

    def test_plan_helpers(self):
        plan = FaultPlan.crash_at_step(7)
        assert plan.step_specs and plan.step_specs[0].at_step == 7
        plan = FaultPlan.crash_at_wal_record(3)
        assert plan.specs[0].site == "wal-append"
        assert plan.specs[0].at_visit == 3
        grown = plan.with_spec(FaultSpec(site="pre-acquire", action="abort"))
        assert len(grown.specs) == 2 and grown.seed == plan.seed


class TestInjectorDeterminism:
    def plan(self):
        return FaultPlan(
            specs=(
                FaultSpec(site="pre-acquire", action="delay", delay=1.0,
                          probability=0.3, max_fires=0),
            ),
            seed=42,
        )

    def visit_pattern(self, injector, visits=50):
        return [injector.fire("pre-acquire", txn="T", operation="Op") for _ in range(visits)]

    def test_same_seed_same_fires(self):
        a = self.visit_pattern(FaultInjector(self.plan()))
        b = self.visit_pattern(FaultInjector(self.plan()))
        assert a == b
        assert any(d > 0 for d in a) and not all(d > 0 for d in a)

    def test_different_seed_different_fires(self):
        other = FaultPlan(specs=self.plan().specs, seed=43)
        a = self.visit_pattern(FaultInjector(self.plan()))
        b = self.visit_pattern(FaultInjector(other))
        assert a != b

    def test_at_visit_does_not_consume_rng(self):
        # Adding an exact-visit spec must not shift another spec's draws.
        base = self.visit_pattern(FaultInjector(self.plan()))
        noisy_plan = FaultPlan(
            specs=(
                FaultSpec(site="wal-append", action="crash", at_visit=999),
            ) + self.plan().specs,
            seed=42,
        )
        assert self.visit_pattern(FaultInjector(noisy_plan)) == base

    def test_max_fires_caps(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="delay", delay=2.0,
                             probability=1.0, max_fires=3),),
        )
        injector = FaultInjector(plan)
        delays = self.visit_pattern(injector, visits=10)
        assert delays == [2.0] * 3 + [0.0] * 7
        assert injector.total_fires == 3


class TestSiteFaults:
    def test_injected_abort_at_pre_acquire(self, order_entry):
        plan = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="abort", txn="T1"),)
        )
        kernel = run_transactions(order_entry.db, t1_t2(order_entry), faults=plan)
        assert kernel.handles["T1"].aborted
        assert kernel.handles["T2"].committed
        assert "fault injected at pre-acquire" in str(kernel.handles["T1"].error)

    def test_injected_abort_at_post_subcommit_compensates(self, order_entry):
        # Abort fired after the first ShipOrder committed: the abort path
        # must compensate it (UnshipOrder), leaving T2's effects intact.
        plan = FaultPlan(
            specs=(FaultSpec(site="post-subcommit", action="abort",
                             txn="T1", operation="ShipOrder"),)
        )
        kernel = run_transactions(order_entry.db, t1_t2(order_entry), faults=plan)
        assert kernel.handles["T1"].aborted
        assert kernel.handles["T2"].committed
        compensations = kernel.trace.of_kind("compensate")
        assert any(e.txn == "T1" for e in compensations)

    def test_injected_self_restart_retries_and_commits(self, order_entry):
        plan = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="restart",
                             txn="T1", operation="ShipOrder", at_visit=1),)
        )
        kernel = run_transactions(order_entry.db, t1_t2(order_entry), faults=plan)
        assert kernel.handles["T1"].committed
        assert kernel.handles["T1"].restarts == 1
        assert kernel.trace.of_kind("restart")

    def test_root_scope_restart_escalates_through_abort_path(self, order_entry):
        # The restart's scope is the *root* node, which no invoke frame
        # handles: it must reach _run_top, be recorded with its origin,
        # and abort cleanly through the normal path (satellite fix for
        # the formerly-uncovered defensive branch).
        plan = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="restart",
                             txn="T1", operation="ShipOrder", scope="root"),)
        )
        kernel = run_transactions(order_entry.db, t1_t2(order_entry), faults=plan)
        handle = kernel.handles["T1"]
        assert handle.aborted and not handle.committed
        assert handle.restarts == 1
        unhandled = kernel.trace.of_kind("restart-unhandled")
        assert len(unhandled) == 1
        assert unhandled[0].txn == "T1"
        assert unhandled[0].detail["origin"] == "T1"  # the root node's id
        # T2 is untouched and the history of survivors is intact
        assert kernel.handles["T2"].committed

    def test_crash_point_is_not_swallowed_by_programs(self, order_entry):
        async def swallower(tx):
            try:
                return await tx.call(order_entry.item(0), "ShipOrder", 1)
            except Exception:  # noqa: BLE001 - the point of the test
                return "swallowed"

        plan = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="crash",
                             operation="ShipOrder"),)
        )
        db = order_entry.db
        kernel = TransactionManager(db, scheduler=Scheduler(), faults=plan)
        kernel.spawn("T", swallower)
        with pytest.raises(CrashPoint):
            kernel.run()

    def test_injected_delay_advances_virtual_clock(self, order_entry):
        from repro.orderentry.schema import build_order_entry_database

        baseline = run_transactions(order_entry.db, t1_t2(order_entry))
        fresh = build_order_entry_database(n_items=2, orders_per_item=2)
        plan = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="delay",
                             delay=25.0, txn="T1", at_visit=1),)
        )
        kernel = run_transactions(fresh.db, t1_t2(fresh), faults=plan)
        assert kernel.handles["T1"].committed
        assert kernel.scheduler.clock >= baseline.scheduler.clock + 25.0

    def test_wal_append_operation_filter(self, order_entry):
        # Crash on the first *SubtxnCommit* append specifically: update
        # records before it stay durable, no status record exists yet.
        plan = FaultPlan(
            specs=(FaultSpec(site="wal-append", action="crash",
                             operation="SubtxnCommit"),)
        )
        from repro.recovery import WriteAheadLog

        wal = WriteAheadLog()
        kernel = TransactionManager(
            order_entry.db, scheduler=Scheduler(), wal=wal, faults=plan
        )
        for name, program in t1_t2(order_entry).items():
            kernel.spawn(name, program)
        with pytest.raises(CrashPoint) as excinfo:
            kernel.run()
        assert excinfo.value.site == "wal-append"
        from repro.recovery.wal import SubtxnCommitRecord

        commits = [r for r in wal if isinstance(r, SubtxnCommitRecord)]
        assert len(commits) == 1  # the record is durable; the crash is after


class TestFaultStormHygiene:
    def test_storm_of_faults_leaves_no_lock_debris(self):
        # Aborts, restarts, and delays raining on a contended workload:
        # after the run every transaction is decided and the lock plane
        # is empty.
        workload = OrderEntryWorkload(
            WorkloadConfig(n_items=2, orders_per_item=2, seed=5)
        )
        programs = dict(workload.take(6))
        plan = FaultPlan(
            specs=(
                FaultSpec(site="pre-acquire", action="restart",
                          probability=0.15, max_fires=4),
                FaultSpec(site="pre-acquire", action="abort",
                          probability=0.08, max_fires=2),
                FaultSpec(site="pre-acquire", action="delay", delay=3.0,
                          probability=0.2, max_fires=0),
            ),
            seed=9,
        )
        kernel = run_transactions(workload.db, programs, faults=plan)
        assert kernel.faults.total_fires > 0
        for name, handle in kernel.handles.items():
            assert handle.committed or handle.aborted, name
            assert not kernel.locks.locks_held_by_tree(handle.root), name
            assert not kernel.locks.pending_of_tree(handle.root), name
        assert kernel.waits.edge_count == 0
        snapshot = kernel.obs.snapshot()
        assert snapshot.counter("fault.injected") == kernel.faults.total_fires

    def test_fault_metrics_surface_in_run_metrics(self, order_entry):
        from repro.bench.metrics import collect

        plan = FaultPlan(
            specs=(FaultSpec(site="pre-acquire", action="abort", txn="T1"),)
        )
        kernel = run_transactions(order_entry.db, t1_t2(order_entry), faults=plan)
        metrics = collect(kernel, "semantic")
        assert metrics.faults_injected == 1
        assert metrics.timeouts_fired == 0
        assert metrics.retries_exhausted == 0

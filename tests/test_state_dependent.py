"""Tests for state-dependent commutativity (escrow-style matrix cells)."""

from __future__ import annotations

import pytest

from repro.core.kernel import run_transactions
from repro.core.serializability import is_semantically_serializable
from repro.errors import SchemaError
from repro.objects.database import Database
from repro.objects.encapsulated import TypeSpec
from repro.semantics.compatibility import CompatibilityMatrix, StateView
from repro.semantics.invocation import Invocation

INSUFFICIENT = "insufficient-funds"


def make_escrow_type() -> TypeSpec:
    spec = TypeSpec("Escrow")

    @spec.method(inverse=lambda result, args: ("Deposit", args) if result == "ok" else None)
    async def Withdraw(ctx, account, amount):
        balance_atom = account.impl_component("balance")
        balance = await ctx.get(balance_atom)
        if balance < amount:
            return INSUFFICIENT
        await ctx.put(balance_atom, balance - amount)
        return "ok"

    @spec.method(inverse=lambda result, args: ("Withdraw", args))
    async def Deposit(ctx, account, amount):
        atom = account.impl_component("balance")
        await ctx.put(atom, await ctx.get(atom) + amount)
        return "ok"

    @spec.method(readonly=True)
    async def Balance(ctx, account):
        return await ctx.get(account.impl_component("balance"))

    def funds_cover_all(held, requested, view):
        balance = view.obj.impl_component("balance").raw_get()
        reserved = sum(
            inv.arg(0, 0)
            for inv in view.held_invocations
            if inv.operation == "Withdraw"
        )
        return balance >= reserved + requested.arg(0, 0)

    m = spec.matrix
    m.allow_if_state("Withdraw", "Withdraw", funds_cover_all, "escrow")
    m.allow("Deposit", "Deposit")
    m.allow("Deposit", "Withdraw")
    m.conflict("Deposit", "Balance")
    m.conflict("Withdraw", "Balance")
    m.allow("Balance", "Balance")
    spec.validate()
    return spec


def build_account(opening: int):
    spec = make_escrow_type()
    db = Database()
    account = db.new_encapsulated(spec, "acct")
    db.attach_child(account)
    impl = db.new_tuple("impl")
    impl.add_component("balance", db.new_atom("balance", opening))
    account.set_implementation(impl)
    return db, account


def withdrawers(account, amounts):
    def make(amount):
        async def program(tx):
            return await tx.call(account, "Withdraw", amount)
        return program

    return {f"W{i}": make(a) for i, a in enumerate(amounts)}


class TestMatrixMechanics:
    def test_state_cell_requires_view(self):
        m = CompatibilityMatrix("T", ["A"])
        m.allow_if_state("A", "A", lambda h, r, v: True)
        a = Invocation("A")
        assert not m.compatible(a, a)  # no view: conservative conflict
        db = Database()
        obj = db.new_atom("x", 0)
        assert m.compatible(a, a, StateView(obj=obj))

    def test_state_cell_mirrors_arguments(self):
        m = CompatibilityMatrix("T", ["A", "B"])
        m.allow_if_state("A", "B", lambda h, r, v: h.arg(0) < r.arg(0))
        db = Database()
        view = StateView(obj=db.new_atom("x", 0))
        assert m.compatible(Invocation("A", (1,)), Invocation("B", (2,)), view)
        # mirrored orientation swaps the roles
        assert m.compatible(Invocation("B", (2,)), Invocation("A", (1,)), view)
        assert not m.compatible(Invocation("B", (1,)), Invocation("A", (2,)), view)

    def test_exactly_one_kind_per_cell(self):
        m = CompatibilityMatrix("T", ["A"])
        with pytest.raises(SchemaError):
            m.set_entry("A", "A", value=True, state_predicate=lambda h, r, v: True)

    def test_has_state_cells(self):
        m = CompatibilityMatrix("T", ["A"])
        assert not m.has_state_cells()
        m.allow_if_state("A", "A", lambda h, r, v: True)
        assert m.has_state_cells()

    def test_render(self):
        m = CompatibilityMatrix("T", ["A"])
        m.allow_if_state("A", "A", lambda h, r, v: True, label="escrow")
        assert m.as_table()[1][1] == "escrow"


class TestEscrowExecution:
    def test_covered_withdrawals_run_concurrently(self):
        db, account = build_account(100)
        kernel = run_transactions(db, withdrawers(account, [30, 30, 30]))
        assert account.impl_component("balance").raw_get() == 10
        method_blocks = [
            e for e in kernel.trace.of_kind("block")
            if "Withdraw" in str(e.detail.get("mode", ""))
        ]
        assert method_blocks == []  # escrow granted all three
        assert all(h.result == "ok" for h in kernel.handles.values())

    def test_uncovered_withdrawal_waits_and_fails_cleanly(self):
        db, account = build_account(70)
        kernel = run_transactions(db, withdrawers(account, [30, 30, 30]))
        balance = account.impl_component("balance").raw_get()
        results = sorted(h.result for h in kernel.handles.values())
        assert balance == 10
        assert results == [INSUFFICIENT, "ok", "ok"]
        # the uncovered request produced a method-level wait
        method_blocks = [
            e for e in kernel.trace.of_kind("block")
            if "Withdraw" in str(e.detail.get("mode", ""))
        ]
        assert method_blocks

    def test_never_overdraft(self):
        for opening in (0, 25, 50, 95, 200):
            db, account = build_account(opening)
            kernel = run_transactions(
                db, withdrawers(account, [30, 40, 50]), policy="random", seed=opening
            )
            assert account.impl_component("balance").raw_get() >= 0

    def test_histories_serializable(self):
        for seed in range(6):
            db, account = build_account(100)
            kernel = run_transactions(
                db, withdrawers(account, [30, 30, 30]), policy="random", seed=seed
            )
            result = is_semantically_serializable(kernel.history(), db=db)
            assert result.serializable, seed

    def test_deposit_never_blocks_withdraw(self):
        db, account = build_account(10)

        async def deposit(tx):
            return await tx.call(account, "Deposit", 100)

        programs = {"D": deposit, **withdrawers(account, [5])}
        kernel = run_transactions(db, programs)
        assert all(h.committed for h in kernel.handles.values())

"""Coexistence of object-oriented and "conventional" transactions.

The paper's central motivation (Section 1.1): real systems mix
transactions that invoke object-type-specific methods with transactions
that access objects *directly* through a generic data manipulation
language — object-assembly queries, ad-hoc SQL, legacy code.  These
tests drive that mix explicitly:

* a *conventional reporting query* reads the whole database through
  generic operations only (Scan / Get — no methods at all);
* *object-oriented updaters* run the Section-2 methods concurrently;
* the protocol must give the query a semantically consistent view and
  keep every history reducible.
"""

from __future__ import annotations

import pytest

from repro.core.protocol import SemanticLockingProtocol
from repro.core.serializability import is_semantically_serializable
from repro.orderentry.schema import PAID, SHIPPED, build_order_entry_database
from repro.orderentry.transactions import make_t1, make_t2
from repro.protocols.open_nested_naive import OpenNestedNaiveProtocol

from tests.helpers import run_programs


def make_report_query(built):
    """A conventional transaction: assemble every order's state via
    generic operations only (no encapsulated methods)."""

    async def report(tx):
        rows = []
        for __, item in await tx.scan(built.items_set):
            orders = item.impl_component("Orders")
            for order_no, order in await tx.scan(orders):
                status = await tx.get(order.impl_component("Status"))
                quantity = await tx.get(order.impl_component("Quantity"))
                rows.append((item.name, order_no, status.events, quantity))
        return tuple(rows)

    return report


def make_conventional_update(built, item_index, order_index):
    """A conventional updater: raw Get/Put on a status atom (bypassing
    both Item and Order encapsulation entirely)."""

    async def update(tx):
        atom = built.status_atom(item_index, order_index)
        events = await tx.get(atom)
        await tx.put(atom, events.add("audited"))
        return True

    return update


class TestReportingQueryCoexistence:
    def test_query_sees_consistent_snapshot(self):
        """The report never observes a half-applied T1: every order it
        sees as shipped by T1 implies T1's other order is shipped too
        (when the report ran after T1)."""
        for seed in range(10):
            built = build_order_entry_database(n_items=2, orders_per_item=1)
            kernel = run_programs(
                built.db,
                {
                    "T1": make_t1(built.item(0), 1, built.item(1), 1),
                    "Q": make_report_query(built),
                },
                protocol=SemanticLockingProtocol(),
                policy="random",
                seed=seed,
            )
            report = kernel.handles["Q"].result
            if report is None:
                continue  # query aborted (deadlock victim); retried IRL
            shipped = {row[:2] for row in report if SHIPPED in row[2]}
            assert shipped in (set(), {("i1", 1), ("i2", 1)}), (seed, report)
            assert is_semantically_serializable(kernel.history(), db=built.db)

    def test_naive_protocol_lets_query_see_torn_state(self):
        """Under the Section-3 protocol some interleaving shows the
        query a half-applied T1 — the coexistence problem in vivo."""
        torn_seen = False
        for seed in range(60):
            built = build_order_entry_database(n_items=2, orders_per_item=1)
            kernel = run_programs(
                built.db,
                {
                    "T1": make_t1(built.item(0), 1, built.item(1), 1),
                    "Q": make_report_query(built),
                },
                protocol=OpenNestedNaiveProtocol(),
                policy="random",
                seed=seed,
            )
            report = kernel.handles["Q"].result
            if report is None:
                continue
            shipped = {row[:2] for row in report if SHIPPED in row[2]}
            if shipped not in (set(), {("i1", 1), ("i2", 1)}):
                torn_seen = True
                verdict = is_semantically_serializable(kernel.history(), db=built.db)
                assert not verdict.serializable
                break
        assert torn_seen

    def test_query_and_payments_interleave(self):
        """TotalPayment-irrelevant updates (shipping) do not serialize
        against the report's *status* reads of other orders... but the
        report reads every status, so updates and the query genuinely
        contend; all we require is commit + reducibility."""
        built = build_order_entry_database(n_items=3, orders_per_item=2)
        kernel = run_programs(
            built.db,
            {
                "T2": make_t2(built.item(0), 1, built.item(1), 2),
                "Q": make_report_query(built),
                "T2b": make_t2(built.item(1), 1, built.item(2), 2),
            },
            policy="random",
            seed=5,
        )
        finished = sum(1 for h in kernel.handles.values() if h.committed or h.aborted)
        assert finished == 3
        assert is_semantically_serializable(kernel.history(), db=built.db)


class TestConventionalUpdaters:
    def test_raw_updates_coexist_with_methods(self):
        """A Get/Put bypasser marking orders 'audited' races method
        transactions; the protocol serializes them at the leaf level and
        the result contains both effects."""
        built = build_order_entry_database(n_items=1, orders_per_item=1)
        kernel = run_programs(
            built.db,
            {
                "PAY": make_t2(built.item(0), 1, built.item(0), 1),
                "AUDIT": make_conventional_update(built, 0, 0),
            },
            policy="random",
            seed=1,
        )
        status = built.status_atom(0, 0).raw_get()
        committed = {n for n, h in kernel.handles.items() if h.committed}
        if committed == {"PAY", "AUDIT"}:
            assert status.events == frozenset({PAID, "audited"})
        assert is_semantically_serializable(kernel.history(), db=built.db)

    @pytest.mark.parametrize("seed", range(8))
    def test_no_lost_audit_flags(self, seed):
        """Two raw updaters on the same atom: strict leaf R/W locking
        plus restart means no lost update, whatever the interleaving."""
        built = build_order_entry_database(n_items=1, orders_per_item=1)

        def marker(tag):
            async def update(tx):
                atom = built.status_atom(0, 0)
                events = await tx.get(atom)
                await tx.put(atom, events.add(tag))
            return update

        kernel = run_programs(
            built.db,
            {"A": marker("a"), "B": marker("b")},
            policy="random",
            seed=seed,
        )
        committed_tags = {
            tag for tag, name in (("a", "A"), ("b", "B"))
            if kernel.handles[name].committed
        }
        final_events = built.status_atom(0, 0).raw_get().events
        assert committed_tags.issubset(final_events)

"""Unit tests for history recording and its structural queries."""

from __future__ import annotations

from repro.objects.oid import Oid
from repro.txn.history import ActionRecord, History

DB = Oid("Database", 1)
ITEM = Oid("Item", 2)
ATOM = Oid("Atom", 3)
OTHER = Oid("Atom", 4)


def rec(node_id, parent_id, txn, target, op, begin, end, status="committed", args=()):
    return ActionRecord(
        node_id=node_id,
        parent_id=parent_id,
        txn=txn,
        target=target,
        operation=op,
        args=tuple(args),
        begin_seq=begin,
        end_seq=end,
        status=status,
        depth=0 if parent_id is None else 1,
    )


def sample_history() -> History:
    records = [
        rec("t1", None, "T1", DB, "Transaction", 1, 10),
        rec("a", "t1", "T1", ITEM, "Ship", 2, 9),
        rec("a1", "a", "T1", ATOM, "Put", 3, 4, args=(5,)),
        rec("t2", None, "T2", DB, "Transaction", 5, 12, status="aborted"),
        rec("b", "t2", "T2", ITEM, "Pay", 6, 8),
    ]
    composition = {ATOM: ITEM, OTHER: DB, ITEM: DB, DB: None}
    return History(records=records, composition_parent=composition)


class TestStructure:
    def test_top_level_and_children(self):
        h = sample_history()
        assert [r.node_id for r in h.top_level()] == ["t1", "t2"]
        assert [r.node_id for r in h.children_of("t1")] == ["a"]
        assert [r.node_id for r in h.children_of("a")] == ["a1"]

    def test_leaves_in_begin_order(self):
        h = sample_history()
        assert [r.node_id for r in h.leaves()] == ["a1", "b"]

    def test_transactions(self):
        assert sample_history().transactions() == ["T1", "T2"]

    def test_committed_only_filters_aborted(self):
        h = sample_history().committed_only()
        assert h.transactions() == ["T1"]
        assert all(r.txn == "T1" for r in h.records)

    def test_record_lookup_and_label(self):
        h = sample_history()
        r = h.record("a1")
        assert r.operation == "Put"
        assert "Put(5)" in r.label


class TestComposition:
    def test_chain(self):
        h = sample_history()
        assert h.composition_chain(ATOM) == [ATOM, ITEM, DB]

    def test_related_ancestor(self):
        h = sample_history()
        assert h.composition_related(ATOM, ITEM)
        assert h.composition_related(ITEM, ATOM)
        assert h.composition_related(ATOM, ATOM)

    def test_unrelated_siblings(self):
        h = sample_history()
        assert not h.composition_related(ATOM, OTHER)

    def test_format_runs(self):
        text = sample_history().format()
        assert "T1" in text and "Put" in text

"""Tests for the Fig. 4-style timeline renderer."""

from __future__ import annotations

from repro.orderentry.schema import build_order_entry_database
from repro.orderentry.transactions import make_t1, make_t2
from repro.txn.history import History
from repro.txn.timeline import render_lock_waits, render_timeline

from tests.helpers import run_programs


def run_fig4_like():
    built = build_order_entry_database(n_items=2, orders_per_item=2)
    kernel = run_programs(
        built.db,
        {
            "T1": make_t1(built.item(0), 1, built.item(1), 2),
            "T2": make_t2(built.item(0), 1, built.item(1), 2),
        },
    )
    return kernel


class TestRenderTimeline:
    def test_empty_history(self):
        assert "empty" in render_timeline(History(records=[], composition_parent={}))

    def test_lanes_and_events(self):
        kernel = run_fig4_like()
        text = render_timeline(kernel.history())
        lines = text.splitlines()
        assert "T1" in lines[0] and "T2" in lines[0]
        # both transactions begin and commit
        assert sum("BEGIN" in line for line in lines) == 2
        assert sum("COMMIT" in line for line in lines) == 2
        # method frames open and close
        assert any("ShipOrder" in line and "{" in line for line in lines)
        assert any("} ShipOrder" in line for line in lines)
        # leaves appear
        assert any("Get()" in line for line in lines)

    def test_rows_ordered_by_seq(self):
        kernel = run_fig4_like()
        text = render_timeline(kernel.history())
        seqs = [
            int(line.split()[0])
            for line in text.splitlines()[2:]
            if line.strip() and line.split()[0].isdigit()
        ]
        assert seqs == sorted(seqs)

    def test_truncation(self):
        kernel = run_fig4_like()
        text = render_timeline(kernel.history(), lane_width=12)
        for line in text.splitlines()[2:]:
            # prefix "seq  " is 6 chars; lanes 12 + 2 separator
            assert len(line) <= 6 + 12 * 2 + 2

    def test_interleaving_visible(self):
        """Events of the two transactions alternate in the output."""
        kernel = run_fig4_like()
        lanes = []
        for line in render_timeline(kernel.history()).splitlines()[2:]:
            if not line.strip():
                continue
            body = line[6:]
            left = body[:36].strip()
            lanes.append("T1" if left else "T2")
        assert "T1" in lanes and "T2" in lanes
        switches = sum(1 for a, b in zip(lanes, lanes[1:]) if a != b)
        assert switches >= 4  # genuinely interleaved


class TestRenderLockWaits:
    def test_no_waits(self):
        kernel = run_fig4_like()
        assert render_lock_waits(kernel.history(), kernel.trace) == "(no lock waits)"

    def test_waits_listed(self):
        built = build_order_entry_database(n_items=1, orders_per_item=1)

        async def writer(tx):
            atom = built.status_atom(0, 0)
            await tx.put(atom, frozenset({"x"}))
            for __ in range(4):
                await tx.pause()

        async def reader(tx):
            return await tx.get(built.status_atom(0, 0))

        kernel = run_programs(built.db, {"W": writer, "R": reader})
        text = render_lock_waits(kernel.history(), kernel.trace)
        assert "R blocked on" in text
        assert "waiting for: W" in text

"""The buffer pool: pins, LRU, single writeback, WAL-before-data.

The pool is tested over an instrumented fake disk that records every
``read_page``/``write_page`` in order, and a fake WAL that records when
``sync_to`` was called relative to those writes — the WAL-before-data
assertion is literally "the sync appears in the combined event log
before the page write it covers".
"""

from __future__ import annotations

import pytest

from repro.storage.bufferpool import BufferPool, BufferPoolError


class FakeDisk:
    """In-memory page store recording the exact operation sequence."""

    def __init__(self):
        self.pages: dict[int, bytes] = {}
        self.events: list[tuple] = []

    def read_page(self, page_no, strict=True):
        self.events.append(("read", page_no))
        return self.pages.get(page_no)

    def write_page(self, page_no, payload):
        self.events.append(("write", page_no, payload))
        self.pages[page_no] = payload

    def writes_of(self, page_no):
        return [e for e in self.events if e[0] == "write" and e[1] == page_no]


class FakeWal:
    """Tracks durable_lsn; logs syncs into the *disk's* event stream."""

    def __init__(self, disk: FakeDisk):
        self._disk = disk
        self.durable_lsn = 0

    def sync_to(self, lsn):
        self._disk.events.append(("sync_to", lsn))
        self.durable_lsn = max(self.durable_lsn, lsn)


def make_pool(capacity=2, with_wal=False):
    disk = FakeDisk()
    wal = FakeWal(disk) if with_wal else None
    return BufferPool(disk, capacity=capacity, wal=wal), disk, wal


class TestPinning:
    def test_miss_then_hit(self):
        pool, disk, __ = make_pool()
        disk.pages[0] = b"zero"
        frame = pool.pin(0)
        assert frame.payload == b"zero"
        pool.unpin(0)
        pool.pin(0)  # hit: no second read
        pool.unpin(0)
        assert disk.events == [("read", 0)]

    def test_pins_nest(self):
        pool, __, __ = make_pool()
        pool.pin(0)
        pool.pin(0)
        pool.unpin(0)
        assert pool.pinned_pages == [0]
        pool.unpin(0)
        assert pool.pinned_pages == []
        with pytest.raises(BufferPoolError, match="not pinned"):
            pool.unpin(0)

    def test_unpin_nonresident_rejected(self):
        pool, __, __ = make_pool()
        with pytest.raises(BufferPoolError, match="not resident"):
            pool.unpin(7)

    def test_put_requires_pin(self):
        pool, __, __ = make_pool()
        pool.pin(0)
        pool.unpin(0)
        with pytest.raises(BufferPoolError, match="must be pinned"):
            pool.put(0, b"data")


class TestEviction:
    def test_pinned_pages_never_evicted(self):
        pool, __, __ = make_pool(capacity=2)
        pool.pin(0)  # stays pinned
        pool.pin(1)
        pool.unpin(1)
        pool.pin(2)  # must evict 1, never 0
        assert pool.frame(0) is not None
        assert pool.frame(1) is None
        pool.check_invariants()

    def test_all_pinned_raises(self):
        pool, __, __ = make_pool(capacity=2)
        pool.pin(0)
        pool.pin(1)
        with pytest.raises(BufferPoolError, match="all 2 frames are pinned"):
            pool.pin(2)

    def test_lru_order(self):
        pool, __, __ = make_pool(capacity=3)
        for page in (0, 1, 2):
            pool.pin(page)
            pool.unpin(page)
        pool.pin(0)  # 0 is now most recent; LRU is 1
        pool.unpin(0)
        pool.pin(3)
        assert pool.frame(1) is None
        assert pool.frame(0) is not None and pool.frame(2) is not None
        pool.pin(4)  # next LRU is 2
        assert pool.frame(2) is None
        pool.check_invariants()

    def test_clean_eviction_never_writes(self):
        pool, disk, __ = make_pool(capacity=1)
        disk.pages[0] = b"zero"
        pool.pin(0)
        pool.unpin(0)  # clean
        pool.pin(1)  # evicts 0
        assert disk.writes_of(0) == []


class TestWriteback:
    def test_dirty_eviction_writes_back_exactly_once(self):
        pool, disk, __ = make_pool(capacity=1)
        pool.pin(0)
        pool.put(0, b"v1")
        pool.unpin(0)
        pool.pin(1)  # evicts dirty 0
        assert disk.writes_of(0) == [("write", 0, b"v1")]
        pool.unpin(1)
        pool.pin(2)  # evicts clean 1 — no extra write of 0
        assert disk.writes_of(0) == [("write", 0, b"v1")]

    def test_flush_marks_clean_so_eviction_skips_disk(self):
        pool, disk, __ = make_pool(capacity=2)
        pool.pin(0)
        pool.put(0, b"v1")
        pool.unpin(0)
        pool.flush_page(0)
        assert disk.writes_of(0) == [("write", 0, b"v1")]
        pool.pin(1)
        pool.unpin(1)
        pool.pin(2)
        pool.pin(3)  # evict both clean frames
        assert disk.writes_of(0) == [("write", 0, b"v1")]  # still exactly one

    def test_flush_all_writes_every_dirty_frame(self):
        pool, disk, __ = make_pool(capacity=4)
        for page in (0, 1, 2):
            pool.pin(page)
            pool.put(page, b"p%d" % page)
            pool.unpin(page)
        pool.pin(3)
        pool.unpin(3)  # clean
        pool.flush_all()
        assert pool.dirty_pages == []
        assert [e[1] for e in disk.events if e[0] == "write"] == [0, 1, 2]
        assert pool.resident == 4  # flush does not evict

    def test_redirtied_after_flush_writes_again(self):
        pool, disk, __ = make_pool()
        pool.pin(0)
        pool.put(0, b"v1")
        pool.unpin(0)
        pool.flush_page(0)
        pool.pin(0)
        pool.put(0, b"v2")
        pool.unpin(0)
        pool.flush_page(0)
        assert disk.writes_of(0) == [("write", 0, b"v1"), ("write", 0, b"v2")]


class TestWalBeforeData:
    def test_sync_precedes_data_write(self):
        pool, disk, wal = make_pool(capacity=1, with_wal=True)
        pool.pin(0)
        pool.put(0, b"v1", lsn=17)
        pool.unpin(0)
        pool.pin(1)  # evict dirty 0: WAL must be durable to 17 first
        ordered = [e for e in disk.events if e[0] in ("sync_to", "write")]
        assert ordered == [("sync_to", 17), ("write", 0, b"v1")]
        assert wal.durable_lsn == 17

    def test_already_durable_skips_sync(self):
        pool, disk, wal = make_pool(capacity=1, with_wal=True)
        wal.durable_lsn = 100
        pool.pin(0)
        pool.put(0, b"v1", lsn=17)
        pool.unpin(0)
        pool.flush_page(0)
        assert [e for e in disk.events if e[0] == "sync_to"] == []

    def test_unpin_dirty_lsn_keeps_maximum(self):
        pool, disk, wal = make_pool(with_wal=True)
        pool.pin(0)
        pool.put(0, b"v1", lsn=9)
        pool.unpin(0, dirty=True, lsn=4)  # lower lsn must not regress
        assert pool.frame(0).page_lsn == 9
        pool.flush_page(0)
        assert ("sync_to", 9) in disk.events


class TestInvariants:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            BufferPool(FakeDisk(), capacity=0)

    def test_check_invariants_catches_corruption(self):
        pool, __, __ = make_pool()
        pool.pin(0)
        pool.frame(0).page_no = 5  # simulate bookkeeping corruption
        with pytest.raises(AssertionError, match="claims"):
            pool.check_invariants()

    def test_metrics_registry_binding(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        disk = FakeDisk()
        pool = BufferPool(disk, capacity=1, metrics=registry)
        pool.pin(0)
        pool.put(0, b"x")
        pool.unpin(0)
        pool.pin(1)  # miss + dirty eviction
        assert registry.counter("bufferpool.misses").value == 2
        assert registry.counter("bufferpool.evictions").value == 1
        assert registry.counter("bufferpool.writebacks").value == 1
        assert registry.gauge("bufferpool.pinned").value == 1

"""Setup shim for legacy (offline, no-wheel) editable installs."""
from setuptools import setup

setup()

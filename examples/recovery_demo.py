"""Multi-level crash recovery — the paper's deferred future work, built.

Runs the order-entry workload with a write-ahead log, crashes the
"process" at an inconvenient moment (after a NewOrder subtransaction
committed, before its transaction did), restores a backup of the
initial database, and recovers: redo repeats history, then losers are
undone at the highest level — the committed NewOrder is *compensated*
with CancelOrder rather than physically rolled back, exactly the
multi-level recovery of [WHBM90, HW91] the paper points to.

Run:  python examples/recovery_demo.py
"""

from repro.core.kernel import TransactionManager
from repro.orderentry.schema import ITEM_TYPE, ORDER_TYPE, build_order_entry_database
from repro.orderentry.transactions import make_t1
from repro.recovery import WriteAheadLog, recover
from repro.recovery.wal import SubtxnCommitRecord, TxnStatusRecord, UpdateRecord
from repro.runtime.scheduler import Scheduler

TYPE_SPECS = {"Item": ITEM_TYPE, "Order": ORDER_TYPE}


def build():
    return build_order_entry_database(n_items=2, orders_per_item=2)


def programs(built):
    async def new_order_then_linger(tx):
        order_no = await tx.call(built.item(0), "NewOrder", 4711, 5)
        for __ in range(30):
            await tx.pause()  # plenty of time to crash before commit
        return order_no

    return {
        "SHIP": make_t1(built.item(0), 1, built.item(1), 2),
        "ENTER": new_order_then_linger,
    }


def describe_wal(wal: WriteAheadLog) -> None:
    for record in wal:
        if isinstance(record, TxnStatusRecord):
            print(f"  [{record.lsn:>3}] {record.txn}: {record.status.upper()}")
        elif isinstance(record, SubtxnCommitRecord):
            inverse = (
                f" (inverse: {record.inverse_operation}{record.inverse_args})"
                if record.inverse_operation
                else ""
            )
            print(f"  [{record.lsn:>3}] {record.txn}: subtxn-commit "
                  f"{record.operation}{record.args}{inverse}")
        elif isinstance(record, UpdateRecord):
            if record.operation == "Put":
                print(f"  [{record.lsn:>3}] {record.txn}: Put {record.before!r} -> "
                      f"{record.after!r}")
            else:
                print(f"  [{record.lsn:>3}] {record.txn}: {record.operation} "
                      f"key={record.key!r}")


def main() -> None:
    # ----- the doomed run -----
    built = build()
    wal = WriteAheadLog()
    kernel = TransactionManager(built.db, scheduler=Scheduler(), wal=wal)
    for name, program in programs(built).items():
        kernel.spawn(name, program)

    crash_after = 40  # scheduler steps; mid-run by construction
    finished = kernel.scheduler.run(max_steps=crash_after)
    kernel.scheduler.shutdown()
    print(f"=== process 'crashed' after {crash_after} steps "
          f"(run complete: {finished}) ===\n")
    print("surviving write-ahead log:")
    describe_wal(wal)

    statuses = {txn: wal.status_of(txn) for txn in wal.transactions()}
    print(f"\ndurable outcomes: {statuses}")

    # ----- recovery -----
    print("\n=== restoring backup and recovering ===\n")
    restored = build()
    report = recover(restored.db, wal, TYPE_SPECS)
    print(report)

    orders = restored.item(0).impl_component("Orders")
    print(f"\norders of item 1 after recovery: {orders.raw_size()} "
          f"(the in-flight NewOrder was compensated away)" if statuses.get("ENTER") == "in-flight"
          else f"\norders of item 1 after recovery: {orders.raw_size()}")
    print("item 1 QOH:", restored.item(0).impl_component("QOH").raw_get())
    status = restored.status_atom(0, 0).raw_get()
    print("order (1,1) status:", sorted(status) or ["new"])


if __name__ == "__main__":
    main()

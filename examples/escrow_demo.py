"""State-dependent commutativity: the escrow method (O'Neil 1986).

The paper restricts itself to state-independent commutativity but notes
that "more general forms of conflict test, based on state-dependent or
return-value commutativity [Bee83, CRR91, LMWF92, O'N86, We88], are
possible within the framework of open nested transactions."  This demo
implements the classic example — an escrow account:

* two ``Withdraw`` invocations are *state-independently* in conflict
  (whether the second succeeds depends on whether the first drained the
  balance);
* with a **state-dependent cell**, they commute whenever the current
  balance covers every granted-but-uncommitted withdrawal plus the
  requested one — the escrow test.

Run:  python examples/escrow_demo.py
"""

from repro import Database, TypeSpec, run_transactions
from repro.core.serializability import is_semantically_serializable

INSUFFICIENT = "insufficient-funds"


def make_account_type(escrow: bool) -> TypeSpec:
    spec = TypeSpec("EscrowAccount" if escrow else "StrictAccount")

    @spec.method(inverse=lambda result, args: ("Deposit", args) if result == "ok" else None)
    async def Withdraw(ctx, account, amount):
        balance_atom = account.impl_component("balance")
        balance = await ctx.get(balance_atom)
        if balance < amount:
            return INSUFFICIENT
        await ctx.put(balance_atom, balance - amount)
        return "ok"

    @spec.method(inverse=lambda result, args: ("Withdraw", args))
    async def Deposit(ctx, account, amount):
        balance_atom = account.impl_component("balance")
        await ctx.put(balance_atom, await ctx.get(balance_atom) + amount)
        return "ok"

    @spec.method(readonly=True)
    async def Balance(ctx, account):
        return await ctx.get(account.impl_component("balance"))

    m = spec.matrix
    m.allow("Deposit", "Deposit")
    m.allow("Deposit", "Withdraw")  # a deposit never invalidates a withdrawal
    m.conflict("Deposit", "Balance")
    m.conflict("Withdraw", "Balance")
    m.allow("Balance", "Balance")

    if escrow:
        def funds_cover_all(held, requested, view):
            """The escrow test: balance covers every granted withdrawal
            on this account plus the requested one."""
            balance = view.obj.impl_component("balance").raw_get()
            reserved = sum(
                inv.arg(0, 0)
                for inv in view.held_invocations
                if inv.operation == "Withdraw"
            )
            return balance >= reserved + requested.arg(0, 0)

        m.allow_if_state("Withdraw", "Withdraw", funds_cover_all, "escrow")
    else:
        m.conflict("Withdraw", "Withdraw")
    spec.validate()
    return spec


def build(spec: TypeSpec, opening: int):
    db = Database()
    account = db.new_encapsulated(spec, "acct")
    db.attach_child(account)
    impl = db.new_tuple("impl")
    impl.add_component("balance", db.new_atom("balance", opening))
    account.set_implementation(impl)
    return db, account


def run(spec: TypeSpec, opening: int, amounts: list[int]):
    db, account = build(spec, opening)

    def withdrawer(amount):
        async def program(tx):
            return await tx.call(account, "Withdraw", amount)
        return program

    kernel = run_transactions(
        db, {f"W{i}-{a}": withdrawer(a) for i, a in enumerate(amounts)}
    )
    balance = account.impl_component("balance").raw_get()
    return db, kernel, balance


def main() -> None:
    amounts = [30, 30, 30]

    print("=== strict (state-independent) account: Withdraw conflicts with Withdraw ===")
    db, kernel, balance = run(make_account_type(escrow=False), 100, amounts)
    print(f"balance after three Withdraw(30) from 100: {balance}")
    print(f"lock waits: {kernel.metrics.blocks}  (withdrawals serialized)")

    print("\n=== escrow account: state-dependent Withdraw/Withdraw cell ===")
    db, kernel, balance = run(make_account_type(escrow=True), 100, amounts)
    print(f"balance after three Withdraw(30) from 100: {balance}")
    method_blocks = [
        e for e in kernel.trace.of_kind("block")
        if "Withdraw" in str(e.detail.get("mode", ""))
    ]
    print(f"method-level lock waits: {len(method_blocks)}  "
          f"(the balance covers all three: they commute)")
    print("results:", {n: h.result for n, h in kernel.handles.items()})
    print("serializable:", bool(is_semantically_serializable(kernel.history(), db=db)))

    print("\n=== escrow guards correctness: funds cover only two of three ===")
    db, kernel, balance = run(make_account_type(escrow=True), 70, amounts)
    results = sorted(h.result for h in kernel.handles.values())
    print(f"balance after three Withdraw(30) from 70: {balance}")
    print(f"results: {results}")
    print("the third withdrawal was *not* granted concurrency by the escrow")
    print("test; it waited and then failed cleanly — no overdraft.")
    assert balance >= 0


if __name__ == "__main__":
    main()

"""Bypassing encapsulation: the Fig. 5/6/7 scenarios (Section 4).

The paper's core problem: transactions that invoke methods directly on
*implementation* objects, bypassing the encapsulated object above them.
This demo shows

* Fig. 5 — the naive Section-3 open-nested protocol (release locks at
  subtransaction commit) admits an execution in which T3 sees one order
  shipped and the other not — impossible in any serial execution — and
  the full protocol (retained locks) blocks T3 until T1 commits instead;
* Fig. 6 — *case 1*: the full protocol ignores a formal conflict with a
  retained lock when the holder's commutative ancestor has committed;
* Fig. 7 — *case 2*: with the commutative ancestor still active, the
  requester waits only for that subtransaction, not for the whole
  transaction.

Run:  python examples/bypass_demo.py
"""

from repro import (
    OpenNestedNaiveProtocol,
    SemanticLockingProtocol,
    SemanticNoReliefProtocol,
    build_order_entry_database,
    is_semantically_serializable,
    make_t1,
    run_transactions,
)
from repro.core.kernel import TransactionManager
from repro.orderentry.schema import PAID, SHIPPED
from repro.orderentry.transactions import make_t3
from repro.runtime.scheduler import Scheduler


def fig5() -> None:
    print("=" * 64)
    print("Fig. 5 — the bypass anomaly")
    print("=" * 64)

    def run(protocol, seed):
        built = build_order_entry_database(n_items=2, orders_per_item=1)
        kernel = run_transactions(
            built.db,
            {
                "T1": make_t1(built.item(0), 1, built.item(1), 1),
                "T3": make_t3(built.order(0, 0), built.order(1, 0)),
            },
            protocol=protocol,
            policy="random",
            seed=seed,
        )
        return built, kernel

    print("\nnaive Section-3 protocol (locks released at subtxn commit):")
    for seed in range(60):
        built, kernel = run(OpenNestedNaiveProtocol(), seed)
        observed = kernel.handles["T3"].result
        if observed == (True, False):
            check = is_semantically_serializable(kernel.history(), db=built.db)
            print(f"  seed {seed}: T3 observed {observed}  <-- order 1 shipped, order 2 not!")
            print(f"  checker verdict: serializable = {check.serializable}")
            break
    else:
        print("  (no anomalous seed found)")

    print("\nfull protocol (retained locks):")
    outcomes = set()
    for seed in range(60):
        built, kernel = run(SemanticLockingProtocol(), seed)
        outcomes.add(kernel.handles["T3"].result)
        assert is_semantically_serializable(kernel.history(), db=built.db)
    print(f"  T3 outcomes over 60 random interleavings: {sorted(outcomes)}")
    print("  (always a consistent snapshot; every history serializable)")


def fig6() -> None:
    print()
    print("=" * 64)
    print("Fig. 6 — case 1: commutative and committed ancestor")
    print("=" * 64)

    def run(protocol):
        built = build_order_entry_database(n_items=2, orders_per_item=1)
        scheduler = Scheduler()
        kernel = TransactionManager(built.db, protocol=protocol, scheduler=scheduler)
        gate = scheduler.create_signal()

        def probe(node, phase):
            if (
                phase == "post"
                and node.invocation.operation == "ShipOrder"
                and node.top_level_name == "T1"
                and not gate.done
            ):
                gate.fire()
            return None

        kernel.probe = probe

        async def t4(tx):
            await gate  # start once T1's first ShipOrder has committed
            a = await tx.call(built.order(0, 0), "TestStatus", PAID)
            b = await tx.call(built.order(1, 0), "TestStatus", PAID)
            return (a, b)

        kernel.spawn("T1", make_t1(built.item(0), 1, built.item(1), 1))
        kernel.spawn("T4", t4)
        kernel.run()
        blocks = [e for e in kernel.trace.of_kind("block") if e.txn == "T4"]
        return kernel, blocks

    kernel, blocks = run(SemanticLockingProtocol())
    print(f"\nfull protocol:     T4 lock waits = {len(blocks)} "
          f"(ChangeStatus(shipped) commutes with TestStatus(paid), and it committed)")
    kernel, blocks = run(SemanticNoReliefProtocol())
    print(f"no-relief ablation: T4 lock waits = {len(blocks)} "
          f"-> blocked on {blocks[0].detail['waits_for']} until top-level commit")


def fig7() -> None:
    print()
    print("=" * 64)
    print("Fig. 7 — case 2: commutative but not yet committed ancestor")
    print("=" * 64)

    built = build_order_entry_database(
        n_items=1, orders_per_item=1, initial_events=frozenset({PAID})
    )
    scheduler = Scheduler()
    kernel = TransactionManager(
        built.db, protocol=SemanticLockingProtocol(), scheduler=scheduler
    )
    g_mid = scheduler.create_signal()
    g_go = scheduler.create_signal()
    status_oid = built.status_atom(0, 0).oid

    def probe(node, phase):
        if phase == "post" and node.invocation.operation == "ChangeStatus":
            g_mid.fire()
            return g_go  # T1 suspended inside ShipOrder
        if (
            phase == "pre"
            and node.top_level_name == "T5"
            and node.invocation.operation == "Get"
            and node.target == status_oid
            and not g_go.done
        ):
            g_go.fire()
        return None

    kernel.probe = probe

    async def t1(tx):
        return await tx.call(built.item(0), "ShipOrder", 1)

    async def t5(tx):
        await g_mid
        return await tx.call(built.item(0), "TotalPayment")

    kernel.spawn("T1", t1)
    kernel.spawn("T5", t5)
    kernel.run()

    print("\nT5's TotalPayment reads the order's status atom directly")
    print("(footnote 4 of the paper) while T1's ShipOrder is active but")
    print("its ChangeStatus subtransaction has committed:\n")
    for event in kernel.trace.of_kind("block", "regrant"):
        print(f"  {event}")
    print(f"\nT5 computed total = {kernel.handles['T5'].result}")
    print("T5 waited exactly for the ShipOrder *subtransaction* commit —")
    print("not for T1's top-level commit.")


def main() -> None:
    fig5()
    fig6()
    fig7()


if __name__ == "__main__":
    main()

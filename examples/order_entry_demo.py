"""The paper's running example, end to end (Sections 2-3, Fig. 4).

Walks through:
1. the object schema of Fig. 1, derived from the live database;
2. the compatibility matrices of Figs. 2 and 3, including the
   mechanical re-derivation from behavioural models;
3. the Fig. 4 concurrent execution of T1 (ship) and T2 (pay) on the
   same orders, with the full open-nested transaction trees.

Run:  python examples/order_entry_demo.py
"""

from repro import build_order_entry_database, make_t1, make_t2, run_transactions
from repro.core.serializability import is_semantically_serializable
from repro.objects.schema import describe_database
from repro.orderentry.models import ItemModel, OrderModel
from repro.orderentry.schema import ITEM_TYPE, ORDER_TYPE
from repro.semantics.derive import derive_matrix, matrices_agree


def show_schema(built) -> None:
    print("=" * 64)
    print("Fig. 1 — object schema of the order-entry database")
    print("=" * 64)
    graph = describe_database(built.db)
    print(graph.format_tree("DB"))


def show_matrices() -> None:
    print()
    print("=" * 64)
    print("Fig. 2 — compatibility matrix of object type Item")
    print("=" * 64)
    print(ITEM_TYPE.matrix.format_table())

    print()
    print("=" * 64)
    print("Fig. 3 — compatibility matrix of object type Order")
    print("=" * 64)
    print(ORDER_TYPE.matrix.format_table())

    print()
    print("Model-checked derivation (behavioural commutativity):")
    print()
    print(derive_matrix(OrderModel()).format_table())
    order_check = matrices_agree(ORDER_TYPE.matrix, OrderModel())
    item_check = matrices_agree(
        ITEM_TYPE.matrix,
        ItemModel(),
        operations=["NewOrder", "ShipOrder", "PayOrder", "TotalPayment"],
    )
    print()
    print("declared Order matrix sound vs model:", order_check.is_sound)
    print("declared Item matrix sound vs model: ", item_check.is_sound)


def run_fig4() -> None:
    print()
    print("=" * 64)
    print("Fig. 4 — concurrent execution of two open nested transactions")
    print("=" * 64)
    built = build_order_entry_database(n_items=2, orders_per_item=2)
    kernel = run_transactions(
        built.db,
        {
            "T1": make_t1(built.item(0), 1, built.item(1), 2),
            "T2": make_t2(built.item(0), 1, built.item(1), 2),
        },
    )
    print(kernel.history().format())
    print()
    print(f"lock waits: {kernel.metrics.blocks}")
    result = is_semantically_serializable(kernel.history(), db=built.db)
    print(f"semantically serializable: {result.serializable}")
    print(f"serial order: {' -> '.join(result.serial_order or [])}")


def main() -> None:
    built = build_order_entry_database(n_items=2, orders_per_item=2)
    show_schema(built)
    show_matrices()
    run_fig4()


if __name__ == "__main__":
    main()

"""Protocol comparison on the order-entry workload.

Runs the same transaction stream (T1–T5 mix) under all six concurrency
control protocols and prints throughput, response time, and blocking
metrics.  The absolute numbers are simulated (virtual time, unit costs);
the *shape* is the paper's claim: the semantic protocol dominates, the
no-relief ablation shows what cases 1/2 buy, and page-granularity
locking trails badly.

Run:  python examples/performance_study.py            (quick)
      python examples/performance_study.py --full     (MPL sweep)
"""

import sys

from repro.bench import format_table, run_closed_loop
from repro.core.protocol import SemanticLockingProtocol, SemanticNoReliefProtocol
from repro.orderentry.workload import WorkloadConfig
from repro.protocols.closed_nested import ClosedNestedProtocol
from repro.protocols.open_nested_naive import OpenNestedNaiveProtocol
from repro.protocols.two_phase_object import ObjectRW2PLProtocol
from repro.protocols.two_phase_page import PageLockingProtocol

PROTOCOLS = {
    "semantic": SemanticLockingProtocol,
    "semantic-no-relief": SemanticNoReliefProtocol,
    "open-nested-naive": OpenNestedNaiveProtocol,
    "closed-nested": ClosedNestedProtocol,
    "object-rw-2pl": ObjectRW2PLProtocol,
    "page-2pl": PageLockingProtocol,
}


def comparison_table(n_transactions: int = 40, mpl: int = 6) -> None:
    rows = []
    for label, factory in PROTOCOLS.items():
        metrics = run_closed_loop(
            factory,
            WorkloadConfig(n_items=3, orders_per_item=3, seed=11),
            n_transactions=n_transactions,
            mpl=mpl,
        )
        rows.append(metrics.row())
    print(format_table(rows, f"{n_transactions} transactions, MPL {mpl}, 3 items"))
    print("\n(naive open nested is fast but UNSAFE under bypassing — see")
    print(" examples/bypass_demo.py; all others are correct.)")


def mpl_sweep() -> None:
    print("\nThroughput vs multiprogramming level")
    print("-" * 60)
    header = ["mpl"] + list(PROTOCOLS)
    rows = []
    for mpl in (1, 2, 4, 8):
        row = {"mpl": mpl}
        for label, factory in PROTOCOLS.items():
            metrics = run_closed_loop(
                factory,
                WorkloadConfig(n_items=3, orders_per_item=3, seed=11),
                n_transactions=30,
                mpl=mpl,
            )
            row[label] = round(metrics.throughput, 4)
        rows.append(row)
    print(format_table(rows))


def main() -> None:
    comparison_table()
    if "--full" in sys.argv:
        mpl_sweep()


if __name__ == "__main__":
    main()

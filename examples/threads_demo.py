"""The semantic protocol under real OS threads.

The deterministic scheduler is the primary runtime, but the lock manager
and conflict test are runtime-agnostic: this demo drives the same
transaction coroutines on ``threading.Thread``s and verifies the same
invariants — commuting updates all commit, no lost updates, the history
is semantically serializable.

Run:  python examples/threads_demo.py
"""

from repro import Database, TypeSpec
from repro.core.kernel import TransactionManager
from repro.core.serializability import is_semantically_serializable
from repro.runtime.threads import ThreadedRuntime

TALLY = TypeSpec("Tally")


# The inverse matters: if a transaction aborts after some Bumps have
# committed (as open subtransactions), they are compensated by negative
# Bumps — physical state restore would erase concurrent increments.
@TALLY.method(inverse=lambda result, args: ("Bump", (-args[0],)))
async def Bump(ctx, tally, amount):
    """Increment; commutes with other increments."""
    value = tally.impl_component("value")
    await ctx.put(value, await ctx.get(value) + amount)
    return None


TALLY.matrix.allow("Bump", "Bump")


def main() -> None:
    db = Database()
    tally = db.new_encapsulated(TALLY, "tally")
    db.attach_child(tally)
    impl = db.new_tuple("tally-impl")
    impl.add_component("value", db.new_atom("value", 0))
    tally.set_implementation(impl)

    runtime = ThreadedRuntime()
    kernel = TransactionManager(db, scheduler=runtime.scheduler)

    n_threads, bumps_each = 6, 5

    def make_program(thread_no):
        async def program(tx):
            for __ in range(bumps_each):
                await tx.call(tally, "Bump", 1)
        return program

    for i in range(n_threads):
        kernel.spawn(f"thread-{i}", make_program(i))

    print(f"running {n_threads} threads x {bumps_each} commuting Bump(1) each...")
    runtime.run()

    value = tally.impl_component("value").raw_get()
    committed = sum(1 for h in kernel.handles.values() if h.committed)
    print(f"committed transactions: {committed}/{n_threads}")
    print(f"final tally: {value} (expected {committed * bumps_each} "
          f"from {committed} committed transactions)")
    print(f"lock waits: {kernel.metrics.blocks}, "
          f"subtransaction restarts: {kernel.metrics.subtxn_restarts}, "
          f"compensations: {kernel.metrics.compensations}")
    result = is_semantically_serializable(kernel.history(), db=db)
    print(f"history semantically serializable: {result.serializable}")
    assert value == committed * bumps_each, "lost or phantom update!"


if __name__ == "__main__":
    main()

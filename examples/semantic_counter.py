"""Define your own encapsulated type: an escrow-style account.

Shows the library's public API for building abstract data types with
commutativity-based concurrency control from scratch:

* declare a ``TypeSpec`` with methods, a compatibility matrix (with a
  parameter-dependent entry), and compensation inverses;
* run commuting deposits concurrently — leaf-level read-modify-write
  conflicts are resolved by subtransaction restart, never by aborting a
  whole transaction;
* abort a transaction and watch its deposit be logically compensated
  while a concurrent commuting deposit survives.

Run:  python examples/semantic_counter.py
"""

from repro import Database, TypeSpec, run_transactions
from repro.core.serializability import is_semantically_serializable

# ---------------------------------------------------------------------------
# The Account type
# ---------------------------------------------------------------------------
ACCOUNT = TypeSpec("Account")


@ACCOUNT.method(inverse=lambda result, args: ("Withdraw", args))
async def Deposit(ctx, account, amount):
    """Add money; commutes with other deposits and withdrawals."""
    balance = account.impl_component("balance")
    await ctx.put(balance, await ctx.get(balance) + amount)
    return amount


@ACCOUNT.method(inverse=lambda result, args: ("Deposit", args) if result == "ok" else None)
async def Withdraw(ctx, account, amount):
    """Remove money (no overdraft check here, for simplicity)."""
    balance = account.impl_component("balance")
    await ctx.put(balance, await ctx.get(balance) - amount)
    return "ok"


@ACCOUNT.method(readonly=True)
async def Balance(ctx, account):
    return await ctx.get(account.impl_component("balance"))


def _build_matrix() -> None:
    m = ACCOUNT.matrix
    m.allow("Deposit", "Deposit")    # additions commute
    m.allow("Deposit", "Withdraw")   # ...with subtractions too
    m.allow("Withdraw", "Withdraw")
    m.conflict("Deposit", "Balance")  # reading observes updates
    m.conflict("Withdraw", "Balance")
    m.allow("Balance", "Balance")


_build_matrix()
ACCOUNT.validate()


def new_account(db: Database, name: str, opening: int):
    account = db.new_encapsulated(ACCOUNT, name)
    db.attach_child(account)
    impl = db.new_tuple(f"{name}-impl")
    impl.add_component("balance", db.new_atom("balance", opening))
    account.set_implementation(impl)
    return account


def main() -> None:
    db = Database()
    account = new_account(db, "acct", 100)

    # ------------------------------------------------------------------
    # Five concurrent deposits: all commute, all commit.
    # ------------------------------------------------------------------
    def depositor(amount):
        async def program(tx):
            return await tx.call(account, "Deposit", amount)
        return program

    kernel = run_transactions(
        db,
        {f"D{i}": depositor(i * 10) for i in range(1, 6)},
        policy="random",
        seed=42,
    )
    print("=== five concurrent deposits ===")
    print("balance:", account.impl_component("balance").raw_get(), "(expected 250)")
    print("commits:", kernel.metrics.commits, " aborts:", kernel.metrics.aborts)
    print("leaf-level deadlocks resolved by subtransaction restart:",
          kernel.metrics.subtxn_restarts)
    print("serializable:", bool(is_semantically_serializable(kernel.history(), db=db)))

    # ------------------------------------------------------------------
    # Compensation: an aborting deposit is withdrawn again, while a
    # concurrent commuting deposit's effect survives.
    # ------------------------------------------------------------------
    async def deposit_then_abort(tx):
        await tx.call(account, "Deposit", 1000)
        for __ in range(10):
            await tx.pause()  # let the other transaction slip in
        tx.abort("changed my mind")

    async def small_deposit(tx):
        return await tx.call(account, "Deposit", 7)

    kernel = run_transactions(
        db, {"BIG": deposit_then_abort, "SMALL": small_deposit}
    )
    print("\n=== compensation ===")
    print("BIG aborted:", kernel.handles["BIG"].aborted,
          "| SMALL committed:", kernel.handles["SMALL"].committed)
    print("compensating subtransactions run:", kernel.metrics.compensations)
    print("balance:", account.impl_component("balance").raw_get(),
          "(expected 257: the aborted 1000 was withdrawn, the 7 survived)")


if __name__ == "__main__":
    main()

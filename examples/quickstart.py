"""Quickstart: one conflict, two runtimes, five minutes.

A tiny encapsulated counter whose ``Add`` methods commute.  Two
transactions add to the *same* counter concurrently: their inner
``Get``/``Put`` leaves formally conflict, but the semantic protocol
relieves the conflict through the commuting ``Add`` ancestors — case 1
(Fig. 6) if the holder's Add already committed, case 2 (Fig. 7) if it
is still running.  The same programs run under the deterministic
virtual-time scheduler and the real-thread engine.

Run:  python examples/quickstart.py
"""

from repro import Database, TypeSpec, is_semantically_serializable, run_transactions
from repro.runtime.threaded import run_threaded_transactions

COUNTER = TypeSpec("Counter")


@COUNTER.method(inverse=lambda result, args: ("Add", (-args[0],)))
async def Add(ctx, counter, amount):
    value = counter.impl_component("value")
    await ctx.put(value, await ctx.get(value) + amount)
    return None


COUNTER.matrix.allow("Add", "Add")  # increments commute


def build() -> tuple[Database, object]:
    db = Database()
    counter = db.new_encapsulated(COUNTER, "hits")
    db.attach_child(counter)
    impl = db.new_tuple("hits-impl")
    impl.add_component("value", db.new_atom("value", 0))
    counter.set_implementation(impl)
    return db, counter


def programs(counter) -> dict:
    def adder(amount):
        async def program(tx):
            for __ in range(2):
                await tx.call(counter, "Add", amount)

        return program

    return {"T1": adder(1), "T2": adder(10)}


def report(label: str, kernel, db, counter) -> None:
    snap = kernel.obs.snapshot()
    committed = sum(1 for h in kernel.handles.values() if h.committed)
    verdict = is_semantically_serializable(kernel.history(), db=db)
    print(f"[{label}] committed {committed}/2 transactions, "
          f"final value = {counter.impl_component('value').raw_get()}")
    print(f"[{label}] conflict cases: "
          f"commutative={snap.counter('conflict.commutative')}, "
          f"case1_relief={snap.counter('conflict.case1_relief')} (Fig. 6), "
          f"case2_wait={snap.counter('conflict.case2_wait')} (Fig. 7)")
    print(f"[{label}] semantically serializable: {verdict.serializable}\n")


def main() -> None:
    db, counter = build()  # virtual-time scheduler: the deterministic oracle
    report("virtual ", run_transactions(db, programs(counter)), db, counter)

    db, counter = build()  # the same programs on real worker threads
    kernel = run_threaded_transactions(db, programs(counter), n_threads=2)
    report("threaded", kernel, db, counter)


if __name__ == "__main__":
    main()

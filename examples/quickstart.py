"""Quickstart: semantic concurrency control in five minutes.

Builds the paper's order-entry database, runs a shipping transaction and
a payment transaction concurrently on the *same orders*, and shows that
the semantic locking protocol lets them interleave without blocking —
the conventional read/write view would serialize them entirely —
while the execution remains semantically serializable.

Run:  python examples/quickstart.py
"""

from repro import (
    SemanticLockingProtocol,
    build_order_entry_database,
    is_semantically_serializable,
    make_t1,
    make_t2,
    run_transactions,
)


def main() -> None:
    # A database of 2 items, each pre-populated with 2 orders (Fig. 1).
    built = build_order_entry_database(n_items=2, orders_per_item=2)

    # T1 ships order 1 of item 1 and order 2 of item 2;
    # T2 records payment for the very same orders (Section 2.3).
    kernel = run_transactions(
        built.db,
        {
            "T1": make_t1(built.item(0), 1, built.item(1), 2),
            "T2": make_t2(built.item(0), 1, built.item(1), 2),
        },
        protocol=SemanticLockingProtocol(),
    )

    print("=== Outcomes ===")
    for name, handle in kernel.handles.items():
        status = "committed" if handle.committed else "aborted"
        print(f"{name}: {status}, result={handle.result}")

    print("\n=== Final state ===")
    print("item 1 QOH:", built.item(0).impl_component("QOH").raw_get())
    print("order (1,1) status:", sorted(built.status_atom(0, 0).raw_get()))
    print("order (2,2) status:", sorted(built.status_atom(1, 1).raw_get()))

    print("\n=== Concurrency ===")
    print("lock waits:", kernel.metrics.blocks, "(ShipOrder and PayOrder commute!)")

    print("\n=== The transaction trees, as executed ===")
    print(kernel.history().format())

    print("\n=== The same execution as a Fig. 4-style timeline ===")
    from repro.txn.timeline import render_timeline

    print(render_timeline(kernel.history(), lane_width=34))

    result = is_semantically_serializable(kernel.history(), db=built.db)
    print("\nsemantically serializable:", result.serializable)
    print("equivalent serial order:", " -> ".join(result.serial_order or []))


if __name__ == "__main__":
    main()

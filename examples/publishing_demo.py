"""Cooperative publishing: semantic concurrency in a second domain.

The paper motivates OODBSs with computer-aided publishing (its authors'
institute built exactly such systems).  This demo defines no new kernel
machinery — it reuses the public library API on a Document/Section
schema and shows the same phenomena as the order-entry example:

* annotations commute: four reviewers hit the same section without a
  single method-level wait, while a word-counting reader that *bypasses*
  the Section encapsulation is handled safely by retained locks;
* authors editing different sections run concurrently
  (parameter-aware matrix), same-section edits serialize;
* an abandoned editing transaction is compensated logically, restoring
  the previous text without disturbing concurrent annotations.

Run:  python examples/publishing_demo.py
"""

from repro import run_transactions, is_semantically_serializable
from repro.publishing.schema import build_publishing_database
from repro.txn.timeline import render_timeline


def reviewers_and_counter() -> None:
    print("=" * 64)
    print("Reviewers annotate while a reader word-counts (bypassing)")
    print("=" * 64)
    shelf = build_publishing_database(n_documents=1, sections_per_document=2)
    doc = shelf.document(0)

    def annotator(note_id):
        async def program(tx):
            return await tx.call(doc, "Annotate", 1, note_id, f"comment {note_id}")
        return program

    async def counter(tx):
        return await tx.call(doc, "WordCount")

    programs = {f"R{i}": annotator(i) for i in range(1, 5)}
    programs["COUNT"] = counter
    kernel = run_transactions(shelf.db, programs)

    print(f"\ncommits: {kernel.metrics.commits}/5, "
          f"lock waits: {kernel.metrics.blocks}")
    print(f"word count observed: {kernel.handles['COUNT'].result}")
    notes = shelf.section(0, 0).impl_component("Notes")
    print(f"notes attached to section 1: {notes.raw_size()}")
    verdict = is_semantically_serializable(kernel.history(), db=shelf.db)
    print(f"semantically serializable: {verdict.serializable}")


def concurrent_authors() -> None:
    print()
    print("=" * 64)
    print("Authors: distinct sections interleave, same section serializes")
    print("=" * 64)
    shelf = build_publishing_database(n_documents=1, sections_per_document=3)
    doc = shelf.document(0)

    def author(section_no, text):
        async def program(tx):
            return await tx.call(doc, "EditSection", section_no, text)
        return program

    kernel = run_transactions(
        shelf.db,
        {
            "A1": author(1, "introduction rewritten"),
            "A2": author(2, "methods rewritten"),
            "A3": author(1, "introduction rewritten again"),
        },
    )
    print(f"\ncommits: {kernel.metrics.commits}/3, lock waits: {kernel.metrics.blocks}")
    print("(A1 vs A2: different sections — no wait; A3 waited for A1)")
    print("\n" + render_timeline(kernel.history(), lane_width=26))


def compensated_edit() -> None:
    print()
    print("=" * 64)
    print("An abandoned edit is compensated; a concurrent note survives")
    print("=" * 64)
    shelf = build_publishing_database(n_documents=1, sections_per_document=1)
    doc = shelf.document(0)

    async def doomed_editor(tx):
        await tx.call(doc, "EditSection", 1, "half-finished rewrite")
        for __ in range(8):
            await tx.pause()
        tx.abort("editor abandoned the rewrite")

    async def reviewer(tx):
        return await tx.call(doc, "Annotate", 1, 7, "needs a citation")

    kernel = run_transactions(shelf.db, {"EDIT": doomed_editor, "REVIEW": reviewer})
    print(f"\nEDIT aborted: {kernel.handles['EDIT'].aborted}, "
          f"REVIEW committed: {kernel.handles['REVIEW'].committed}")
    print(f"compensations run: {kernel.metrics.compensations}")
    print(f"section body restored to: {shelf.body_atom(0, 0).raw_get()!r}")
    notes = shelf.section(0, 0).impl_component("Notes")
    print(f"reviewer's note survived: {notes.raw_contains(7)}")


def main() -> None:
    reviewers_and_counter()
    concurrent_authors()
    compensated_edit()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Intra-repo markdown link and code-path checker (stdlib only).

Scans markdown files for inline links/images ``[text](target)`` and
fails on any *intra-repo* target that does not resolve:

* relative file paths must exist (relative to the linking file);
* ``path#anchor`` additionally requires a matching heading in the
  target markdown file;
* bare ``#anchor`` targets must match a heading in the same file.

It also validates **backticked code paths**: an inline code span that
looks like a repository file path — contains a ``/``, ends in a source
extension (``.py``, ``.md``, ``.json``, ``.yml``, ``.toml``, …), and
carries no glob or placeholder characters — must name a file that
exists, resolved against the repo root (with an ``src/`` fallback, so
both ``src/repro/cli.py`` and the module-style ``repro/cli.py`` spelling
resolve).  That is the guard against docs drifting behind a rename.

External schemes (``http://``, ``https://``, ``mailto:``) are ignored —
CI must not depend on the network.  Anchors use GitHub's slug rules:
lowercase, punctuation stripped, spaces to hyphens, ``-1``/``-2``
suffixes for duplicates.

Usage::

    python tools/check_docs_links.py [FILE_OR_DIR ...]

With no arguments, checks the repository default set: ``README.md``,
``CHANGES.md``, ``DESIGN.md``, ``EXPERIMENTS.md``, and ``docs/*.md``.
Exits 1 and lists every dead link if any check fails.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline link or image: [text](target) / ![alt](target).  Targets with
#: spaces and optional titles ("...") are split off; <wrapped> targets
#: are unwrapped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

#: Inline code span: `...` (no backticks inside).
CODE_SPAN_RE = re.compile(r"`([^`]+)`")
#: Extensions a backticked repo path may end with; anything else
#: (``wal.log``, ``pages.db``, dotted module names) is not checked.
CODE_PATH_EXTENSIONS = (
    ".py", ".md", ".json", ".jsonl", ".yml", ".yaml", ".toml", ".cfg", ".txt",
)
#: A checkable path is plain characters only — a glob, placeholder,
#: space, or ``..`` means the span is illustrative, not a literal path.
CODE_PATH_RE = re.compile(r"^[\w.\-]+(/[\w.\-]+)+$")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug (sans emoji handling)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep contents
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All heading anchors a markdown file exposes."""
    slugs: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = slugs.get(slug, 0)
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
        slugs[slug] = seen + 1
    return anchors


def iter_links(path: Path):
    """Yield (line_number, target) for every inline link, skipping code."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = re.sub(r"`[^`]*`", "``", line)  # ignore inline code spans
        for match in LINK_RE.finditer(stripped):
            yield lineno, match.group(1)


def iter_code_paths(path: Path):
    """Yield (line_number, span) for every path-shaped inline code span."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in CODE_SPAN_RE.finditer(line):
            span = match.group(1).strip()
            if not CODE_PATH_RE.match(span):
                continue
            if ".." in span or not span.endswith(CODE_PATH_EXTENSIONS):
                continue
            yield lineno, span


def code_path_resolves(span: str) -> bool:
    """True if the span names a real repo file (``src/`` fallback included)."""
    return (REPO_ROOT / span).exists() or (REPO_ROOT / "src" / span).exists()


def display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check_file(path: Path) -> list[str]:
    """Return a list of human-readable problems in one markdown file."""
    problems = []
    where = display_path(path)
    for lineno, raw_target in iter_links(path):
        target = raw_target.strip("<>")
        if target.startswith(EXTERNAL_SCHEMES):
            continue
        file_part, _, anchor = target.partition("#")
        if not file_part:  # same-file anchor
            if anchor and anchor not in anchors_of(path):
                problems.append(
                    f"{where}:{lineno}: no heading for anchor #{anchor}"
                )
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(
                f"{where}:{lineno}: "
                f"broken link {target!r} (no such file {file_part!r})"
            )
            continue
        if anchor:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown files: not checkable
            if anchor not in anchors_of(resolved):
                problems.append(
                    f"{where}:{lineno}: "
                    f"{file_part!r} has no heading for anchor #{anchor}"
                )
    for lineno, span in iter_code_paths(path):
        if not code_path_resolves(span):
            problems.append(
                f"{where}:{lineno}: "
                f"backticked path `{span}` names no repo file"
            )
    return problems


def default_targets() -> list[Path]:
    targets = [
        REPO_ROOT / "README.md",
        REPO_ROOT / "CHANGES.md",
        REPO_ROOT / "DESIGN.md",
        REPO_ROOT / "EXPERIMENTS.md",
    ]
    targets.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [t for t in targets if t.exists()]


def collect(args: list[str]) -> list[Path]:
    if not args:
        return default_targets()
    files: list[Path] = []
    for arg in args:
        path = Path(arg)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def main(argv: list[str] | None = None) -> int:
    files = collect(list(sys.argv[1:] if argv is None else argv))
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} file(s)")
        return 1
    print(f"all intra-repo links ok across {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
